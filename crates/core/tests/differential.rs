//! Differential testing of the quiescence-aware cycle engine — serial
//! *and* parallel — against the dense `naive_step` loop.
//!
//! Identically-built, identically-loaded machines run the same random
//! workload three ways — stepped densely, through the serial
//! min-deadline scheduler, and through the sharded parallel engine at
//! several worker counts — and must agree on *everything observable*:
//! cycle count, aggregate [`MachineStats`], the full phase timeline,
//! every user thread's state and PC, per-node cycle counts, and the
//! user-visible register files. This is the engines' correctness
//! argument in executable form: skipping a quiescent component is a
//! provable no-op, and sharding nodes across worker threads behind the
//! per-cycle merge barrier changes nothing observable.

use mm_core::machine::{MMachine, MachineConfig};
use mm_isa::assemble;
use mm_isa::reg::Reg;
use mm_sim::{HState, NUM_CLUSTERS, USER_SLOTS};
use proptest::prelude::*;
use std::sync::Arc;

fn machine() -> MMachine {
    machine_with_workers(1)
}

/// A 2-node machine pinned to `workers` shard threads (clamped to the
/// node count, so 2 is the maximum that actually shards here).
fn machine_with_workers(workers: usize) -> MMachine {
    let mut cfg = MachineConfig::small();
    cfg.engine.workers = Some(workers);
    MMachine::build(cfg).expect("valid config")
}

/// One gene = one instruction-template choice with two parameters.
type Gene = (u8, u64, u64);

/// Expand a gene stream into a program: local ALU/FP work, local and
/// remote loads/stores (the LTLB-miss handler and Fig. 7 messages),
/// user-level SENDs, taken branches (fetch bubbles), and synchronizing
/// accesses (sync-fault retries through the coherence firmware).
/// Register conventions: `r1` = own home page, `r8` = the other node's
/// home page, `r10`/`r11` = raw target pointer + write DIP for SENDs.
fn program_from(genes: &[Gene]) -> String {
    let mut src = String::new();
    for (k, &(op, a, b)) in genes.iter().enumerate() {
        let off = a % 60;
        let imm = b % 1000;
        match op % 11 {
            0 => src.push_str(&format!("add r2, #{imm}, r2\n")),
            1 => src.push_str(&format!("mov #{imm}, r3\n")),
            2 => src.push_str("fadd f1, f2, f3\n"),
            3 => src.push_str(&format!("ld [r1+#{off}], r4\n")),
            4 => src.push_str(&format!("st r2, [r1+#{off}]\n")),
            5 => src.push_str(&format!("st r3, [r8+#{off}]\n")),
            6 => src.push_str(&format!("ld [r8+#{off}], r6\n")),
            7 => src.push_str(&format!("mov #{imm}, mc1\n send r10, r11, #1\n")),
            8 => src.push_str(&format!("brf r0, skip{k}\n add r2, #1, r2\nskip{k}:\n")),
            9 => src.push_str(&format!("st.af r2, [r1+#{off}]\n")),
            _ => src.push_str(&format!("ld.fe [r1+#{off}], r9\n")),
        }
    }
    src.push_str("halt\n");
    src
}

/// Load the same two programs onto both machines (node 0 and node 1,
/// slot 0) with identical register conventions.
fn load_workload(m: &mut MMachine, genes0: &[Gene], genes1: &[Gene]) {
    let progs = [
        Arc::new(assemble(&program_from(genes0)).expect("generated program assembles")),
        Arc::new(assemble(&program_from(genes1)).expect("generated program assembles")),
    ];
    for (node, prog) in progs.iter().enumerate() {
        let other = 1 - node;
        m.load_user_program(node, 0, prog).unwrap();
        m.set_user_reg(node, 0, 0, Reg::Int(1), m.home_ptr(node, 0));
        m.set_user_reg(node, 0, 0, Reg::Int(8), m.home_ptr(other, 0));
        let target = m.home_va(other, 1);
        let ptr = m
            .make_ptr(mm_isa::Perm::ReadWrite, 0, target)
            .expect("target ptr");
        m.set_user_reg(node, 0, 0, Reg::Int(10), ptr);
        let dip = m.image().write_dip;
        m.set_user_reg(node, 0, 0, Reg::Int(11), dip);
    }
}

/// Everything observable must match between the two machines.
fn assert_machines_agree(a: &MMachine, b: &MMachine) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.cycle(), b.cycle(), "clocks diverged");
    prop_assert_eq!(a.stats(), b.stats(), "MachineStats diverged");
    // PR 5 bugfix: class-0 records with unknown kinds used to vanish
    // silently; no workload this harness generates may drop any.
    prop_assert_eq!(a.stats().coherence.unknown_events, 0, "records dropped");
    prop_assert_eq!(
        a.timeline().events(),
        b.timeline().events(),
        "timelines diverged"
    );
    for i in 0..a.node_count() {
        prop_assert_eq!(
            a.node(i).stats().cycles,
            b.node(i).stats().cycles,
            "per-node cycle accounting diverged on node {}",
            i
        );
        for c in 0..NUM_CLUSTERS {
            for s in 0..USER_SLOTS {
                prop_assert_eq!(
                    a.node(i).thread_state(c, s),
                    b.node(i).thread_state(c, s),
                    "thread state diverged at node {} cluster {} slot {}",
                    i,
                    c,
                    s
                );
                prop_assert_eq!(
                    a.node(i).thread_pc(c, s),
                    b.node(i).thread_pc(c, s),
                    "thread PC diverged at node {} cluster {} slot {}",
                    i,
                    c,
                    s
                );
            }
        }
        for r in 0..16u8 {
            prop_assert_eq!(
                a.node(i).read_reg(0, 0, Reg::Int(r)).bits(),
                b.node(i).read_reg(0, 0, Reg::Int(r)).bits(),
                "register r{} diverged on node {}",
                r,
                i
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fixed-horizon three-way differential: random two-node workloads
    /// (programs plus the message traffic they provoke) behave
    /// identically under the dense loop, the serial quiescence engine,
    /// and the parallel engine, even when threads block forever on
    /// synchronizing loads.
    #[test]
    fn engines_match_naive_over_fixed_horizon(
        genes0 in prop::collection::vec((0u8..11, 0u64..64, 0u64..1000), 1..12),
        genes1 in prop::collection::vec((0u8..11, 0u64..64, 0u64..1000), 1..12),
        horizon in 800u64..3000,
    ) {
        let mut dense = machine();
        load_workload(&mut dense, &genes0, &genes1);
        for _ in 0..horizon {
            dense.naive_step();
        }
        for workers in [1, 2] {
            let mut engine = machine_with_workers(workers);
            load_workload(&mut engine, &genes0, &genes1);
            engine.run_cycles(horizon);
            prop_assert_eq!(engine.workers(), workers, "pool size");
            assert_machines_agree(&dense, &engine)?;
        }
    }

    /// Halt-driven three-way differential: when the workload
    /// terminates, both engines' `run_until_halt` must report the exact
    /// halt cycle the dense loop observes (same predicate, evaluated
    /// cycle-by-cycle).
    #[test]
    fn engines_match_naive_halt_cycles(
        genes0 in prop::collection::vec((0u8..9, 0u64..64, 0u64..1000), 1..10),
        genes1 in prop::collection::vec((0u8..9, 0u64..64, 0u64..1000), 1..10),
    ) {
        // Templates 9/10 (synchronizing accesses) are excluded so the
        // workload always halts.
        let mut dense = machine();
        load_workload(&mut dense, &genes0, &genes1);
        let halted_dense = naive_run_until_halt(&mut dense, 100_000);
        for workers in [1, 2] {
            let mut engine = machine_with_workers(workers);
            load_workload(&mut engine, &genes0, &genes1);
            let halted = engine.run_until_halt(100_000).expect("engine run halts");
            prop_assert_eq!(halted_dense, halted, "halt cycles diverged");
            assert_machines_agree(&dense, &engine)?;
        }
    }
}

/// `run_until_halt` re-implemented over the dense debug loop, with the
/// same predicate and the same 64-cycle drain.
fn naive_run_until_halt(m: &mut MMachine, limit: u64) -> u64 {
    let user_done = |m: &MMachine| -> bool {
        let mut any = false;
        for i in 0..m.node_count() {
            for c in 0..NUM_CLUSTERS {
                for s in 0..USER_SLOTS {
                    match m.node(i).thread_state(c, s) {
                        HState::Running => return false,
                        HState::Halted | HState::Faulted(_) => any = true,
                        HState::Idle => {}
                    }
                }
            }
        }
        any
    };
    let start = m.cycle();
    let done = loop {
        assert!(m.cycle() - start < limit, "naive run did not halt");
        if user_done(m) {
            break m.cycle();
        }
        m.naive_step();
    };
    for _ in 0..64 {
        m.naive_step();
    }
    done
}

/// A deterministic end-to-end differential: the Table-1 remote-read
/// scenario — dense loop vs. serial engine vs. parallel engine — down
/// to identical timelines.
#[test]
fn remote_read_scenario_is_cycle_exact() {
    let prog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    #[allow(clippy::type_complexity)]
    let run = |workers: Option<usize>| -> (
        u64,
        mm_core::machine::MachineStats,
        Vec<(u64, mm_core::timeline::Phase)>,
    ) {
        let mut m = match workers {
            Some(w) => machine_with_workers(w),
            None => machine(),
        };
        let va = m.home_va(1, 0);
        assert!(m
            .node_mut(1)
            .mem
            .poke_va(va, mm_mem::MemWord::new(mm_isa::word::Word::from_u64(41))));
        m.load_user_program(0, 0, &prog).unwrap();
        m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));
        let done = if workers.is_some() {
            m.run_until_halt(50_000).unwrap()
        } else {
            naive_run_until_halt(&mut m, 50_000)
        };
        assert_eq!(m.user_reg(0, 0, 0, 3).unwrap().bits(), 41);
        (done, m.stats(), m.timeline().events().to_vec())
    };
    let (done_n, stats_n, tl_n) = run(None);
    for workers in [1, 2] {
        let (done_e, stats_e, tl_e) = run(Some(workers));
        assert_eq!(done_n, done_e, "halt cycle ({workers} workers)");
        assert_eq!(stats_n, stats_e, "machine stats ({workers} workers)");
        assert_eq!(tl_n, tl_e, "timelines ({workers} workers)");
    }
}

/// The coherence-bound workload (PR 5's message-driven protocol) run
/// three ways — dense loop, serial engine, parallel engine at 1, 2 and
/// 4 workers — must be bit-identical: every fetch, invalidation,
/// recall and replay rides fabric packets whose ordering the engines
/// must reproduce exactly. This is the protocol's determinism proof.
#[test]
fn coherence_workload_is_engine_and_worker_invariant() {
    use mm_runtime::kernels::coherent_smooth;
    const ITERS: u64 = 6;
    let build = |workers: Option<usize>| -> MMachine {
        let mut cfg = MachineConfig::with_dims(2, 2, 1);
        if let Some(w) = workers {
            cfg.engine.workers = Some(w);
        }
        let mut m = MMachine::build(cfg).expect("valid config");
        for pair in 0..2 {
            let (even, odd) = (2 * pair, 2 * pair + 1);
            let block = m.home_va(even, 2);
            m.map_coherent_page(odd, block);
            let ptr = m
                .make_ptr(mm_isa::Perm::ReadWrite, 3, block)
                .expect("block ptr");
            for (node, own, other) in [(even, 0usize, 1usize), (odd, 1, 0)] {
                let prog = coherent_smooth(own, other, ITERS);
                m.load_user_program(node, 0, &prog).unwrap();
                m.set_user_reg(node, 0, 0, Reg::Int(1), ptr);
                m.set_user_reg(node, 0, 0, Reg::Fp(15), mm_isa::word::Word::from_f64(0.25));
            }
        }
        m
    };

    let mut dense = build(None);
    let done_dense = naive_run_until_halt(&mut dense, 200_000);
    assert!(
        dense.stats().fabric.coh_packets > 0,
        "workload must move protocol messages over the fabric"
    );
    assert!(dense.stats().coherence.invalidations > 0, "no ping-pong");
    assert_eq!(dense.stats().coherence.unknown_events, 0);

    for workers in [1, 2, 4] {
        let mut m = build(Some(workers));
        assert_eq!(m.workers(), workers);
        let done = m.run_until_halt(200_000).expect("engine run halts");
        assert_eq!(done_dense, done, "halt cycle at {workers} workers");
        assert_eq!(dense.stats(), m.stats(), "stats at {workers} workers");
        assert_eq!(
            dense.timeline().events(),
            m.timeline().events(),
            "timelines at {workers} workers"
        );
        for i in 0..m.node_count() {
            assert_eq!(
                dense.node(i).stats().cycles,
                m.node(i).stats().cycles,
                "node {i} cycles at {workers} workers"
            );
        }
    }
}

/// The parallel engine on an 8-node mesh at every worker count from
/// serial to one-node shards: identical observables throughout. The
/// 3-worker leg exercises a genuinely uneven partition (shards of 3, 3
/// and 2 nodes — `chunk = ceil(8/3) = 3`), 8 gives one-node shards,
/// and 16 clamps. This is the `N`-workers leg of the three-way
/// harness, with cross-pair traffic riding the fabric between shards.
#[test]
fn eight_node_mesh_is_worker_count_invariant() {
    let genes: [Gene; 6] = [
        (3, 5, 0),
        (5, 9, 0),
        (7, 0, 17),
        (0, 0, 3),
        (6, 2, 0),
        (8, 0, 0),
    ];
    const NODES: usize = 8;
    let build = |workers: usize| -> MMachine {
        let mut cfg = MachineConfig::with_dims(2, 2, 2);
        cfg.engine.workers = Some(workers);
        let mut m = MMachine::build(cfg).expect("valid config");
        // Pair the nodes (0↔1, 2↔3, …) with the standard conventions.
        let progs: Vec<Arc<mm_isa::instr::Program>> = (0..NODES)
            .map(|_| Arc::new(assemble(&program_from(&genes)).expect("assembles")))
            .collect();
        for (node, prog) in progs.iter().enumerate() {
            let other = node ^ 1;
            m.load_user_program(node, 0, prog).unwrap();
            m.set_user_reg(node, 0, 0, Reg::Int(1), m.home_ptr(node, 0));
            m.set_user_reg(node, 0, 0, Reg::Int(8), m.home_ptr(other, 0));
            let ptr = m
                .make_ptr(mm_isa::Perm::ReadWrite, 0, m.home_va(other, 1))
                .expect("target ptr");
            m.set_user_reg(node, 0, 0, Reg::Int(10), ptr);
            let dip = m.image().write_dip;
            m.set_user_reg(node, 0, 0, Reg::Int(11), dip);
        }
        m
    };
    let mut reference = build(1);
    let done_ref = reference.run_until_halt(100_000).expect("halts");
    for workers in [2, 3, 4, 8, 16] {
        let mut m = build(workers);
        assert_eq!(m.workers(), workers.min(NODES), "{workers} requested");
        let done = m.run_until_halt(100_000).expect("halts");
        assert_eq!(done_ref, done, "halt cycle at {workers} workers");
        assert_eq!(reference.stats(), m.stats(), "stats at {workers} workers");
        assert_eq!(
            reference.timeline().events(),
            m.timeline().events(),
            "timelines at {workers} workers"
        );
        for i in 0..NODES {
            assert_eq!(
                reference.node(i).stats().cycles,
                m.node(i).stats().cycles,
                "node {i} cycles at {workers} workers"
            );
        }
    }
}
