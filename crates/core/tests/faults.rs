//! Machine-level tests of the robustness layer: deterministic fault
//! campaigns (DRAM upsets, fabric corruption/drops/delays, stall
//! windows), checksum-NACK retransmission, the liveness watchdog, and
//! checkpoint/restore.
//!
//! The two load-bearing claims, in executable form:
//!
//! 1. **Recovery**: under an adversarial link campaign every user
//!    message still lands exactly once, uncorrupted — detection is the
//!    per-message checksum, repair is the §4.1 return-to-sender bounce
//!    machinery resending the pristine copy.
//! 2. **Bit-identity**: a campaign is a pure function of (plan, cycle,
//!    location) — engines and worker counts agree on everything — and
//!    restoring a checkpoint and continuing is indistinguishable from
//!    never having stopped.

use mm_core::error::MachineError;
use mm_core::machine::{MMachine, MachineConfig};
use mm_faults::{DramFaultConfig, FaultPlanConfig, LinkFaultConfig, StallFaultConfig};
use mm_isa::assemble;
use mm_isa::pointer::Perm;
use mm_isa::reg::Reg;
use proptest::prelude::*;
use std::sync::Arc;

/// A 2-node machine with `workers` shard threads and an optional
/// campaign, loaded with a store/load ping workload on both nodes.
fn build_loaded(workers: usize, faults: Option<FaultPlanConfig>, genes: &[(u8, u64)]) -> MMachine {
    let mut cfg = MachineConfig::small();
    cfg.engine.workers = Some(workers);
    cfg.faults = faults;
    let mut m = MMachine::build(cfg).expect("valid config");
    let mut src = String::new();
    for &(op, a) in genes {
        let off = a % 48;
        match op % 5 {
            0 => src.push_str(&format!("add r2, #{}, r2\n", a % 500)),
            1 => src.push_str(&format!("ld [r1+#{off}], r4\n")),
            2 => src.push_str(&format!("st r2, [r1+#{off}]\n")),
            3 => src.push_str(&format!("st r2, [r8+#{off}]\n")),
            _ => src.push_str(&format!("ld [r8+#{off}], r6\n")),
        }
    }
    src.push_str("halt\n");
    let prog = Arc::new(assemble(&src).expect("generated program assembles"));
    for node in 0..2 {
        let other = 1 - node;
        m.load_user_program(node, 0, &prog).unwrap();
        m.set_user_reg(node, 0, 0, Reg::Int(1), m.home_ptr(node, 0));
        m.set_user_reg(node, 0, 0, Reg::Int(8), m.home_ptr(other, 0));
    }
    m
}

fn observables(m: &MMachine) -> (u64, mm_core::machine::MachineStats, Vec<u64>) {
    let mut regs = Vec::new();
    for node in 0..m.node_count() {
        for r in [2u8, 4, 6] {
            regs.push(m.user_reg(node, 0, 0, r).unwrap().bits());
        }
    }
    (m.cycle(), m.stats(), regs)
}

/// A heavy link campaign: a quarter of all user packets corrupted, a
/// chunk dropped or delayed, plus a stall window on the receiving node.
fn heavy_links(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        dram: vec![],
        links: vec![LinkFaultConfig {
            window: (0, 1_000_000),
            corrupt_pct: 25,
            drop_pct: 15,
            delay_pct: 20,
            delay_cycles: 11,
        }],
        stalls: vec![StallFaultConfig {
            node: 1,
            window: (200, 600),
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Checkpoint at an arbitrary point, restore into a freshly-built
    /// machine (possibly with a different worker count), continue both:
    /// every observable — and the *entire next checkpoint, byte for
    /// byte* — must match a run that never stopped.
    #[test]
    fn restore_then_continue_is_bit_identical(
        genes in prop::collection::vec((any::<u8>(), any::<u64>()), 8..24),
        split in 50u64..2_000,
        w_save in 1usize..=2,
        w_load in 1usize..=2,
    ) {
        let mut a = build_loaded(w_save, None, &genes);
        a.run_cycles(split);
        let bytes = a.checkpoint();
        let mut b = build_loaded(w_load, None, &genes);
        b.restore(&bytes).expect("checkpoint restores onto an identical build");
        let _ = a.run_until_halt(500_000);
        let _ = b.run_until_halt(500_000);
        prop_assert_eq!(observables(&a), observables(&b));
        prop_assert_eq!(a.checkpoint(), b.checkpoint(), "end-state checkpoints diverged");
    }

    /// One campaign, three drivers — serial engine, sharded engine,
    /// dense loop — agree on every architectural stat and on what the
    /// campaign did; and a mid-campaign checkpoint restores and
    /// continues bit-identically (the fault runtime — cursor, pristine
    /// copies, retry budgets — is part of machine state).
    #[test]
    fn fault_campaign_is_deterministic_and_checkpointable(
        genes in prop::collection::vec((any::<u8>(), any::<u64>()), 8..20),
        seed in any::<u64>(),
        split in 100u64..3_000,
    ) {
        let plan = heavy_links(seed);
        let mut one = build_loaded(1, Some(plan.clone()), &genes);
        let _ = one.run_until_halt(2_000_000);
        one.run_cycles(50_000);

        let mut two = build_loaded(2, Some(plan.clone()), &genes);
        let _ = two.run_until_halt(2_000_000);
        two.run_cycles(50_000);
        prop_assert_eq!(observables(&one), observables(&two));
        prop_assert_eq!(one.fault_report(), two.fault_report());

        let mut dense = build_loaded(1, Some(plan.clone()), &genes);
        while dense.cycle() < one.cycle() {
            dense.naive_step();
        }
        prop_assert_eq!(one.stats(), dense.stats());
        prop_assert_eq!(one.fault_report(), dense.fault_report());

        let mut saver = build_loaded(1, Some(plan.clone()), &genes);
        saver.run_cycles(split);
        let bytes = saver.checkpoint();
        let mut restored = build_loaded(2, Some(plan), &genes);
        restored.restore(&bytes).expect("mid-campaign checkpoint restores");
        let _ = saver.run_until_halt(2_000_000);
        saver.run_cycles(50_000);
        let _ = restored.run_until_halt(2_000_000);
        restored.run_cycles(50_000);
        prop_assert_eq!(observables(&saver), observables(&restored));
        prop_assert_eq!(saver.checkpoint(), restored.checkpoint());
    }
}

/// Under heavy corruption and flit loss, every remote store still lands
/// exactly once with its original value: the checksum catches in-flight
/// damage, the NACK rides the bounce path, and the sender retransmits
/// the pristine copy.
#[test]
fn campaign_recovers_every_store() {
    let mut cfg = MachineConfig::small();
    cfg.faults = Some(FaultPlanConfig {
        seed: 0xFA57_FA57,
        dram: vec![],
        links: vec![LinkFaultConfig {
            window: (0, 2_000_000),
            corrupt_pct: 40,
            drop_pct: 25,
            delay_pct: 10,
            delay_cycles: 17,
        }],
        stalls: vec![],
    });
    let mut m = MMachine::build(cfg).expect("valid config");
    let n_stores = 24u64;
    let mut src = String::new();
    for off in 0..n_stores {
        src.push_str(&format!("mov #{}, r2\n st r2, [r8+#{off}]\n", 1000 + off));
    }
    src.push_str("halt\n");
    let prog = Arc::new(assemble(&src).unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(8), m.home_ptr(1, 0));
    m.run_until_halt(2_000_000)
        .expect("faulted run still halts");
    m.run_cycles(100_000); // drain retransmit chains (backoff × retries)

    let base = m.home_va(1, 0);
    for off in 0..n_stores {
        let got = m.node(1).mem.peek_va(base + off).unwrap().word.bits();
        assert_eq!(got, 1000 + off, "store at offset {off} lost or corrupted");
    }
    let report = m.fault_report().expect("campaign armed");
    assert!(
        report.packets_corrupted + report.packets_dropped > 0,
        "campaign must actually have faulted packets: {report:?}"
    );
    assert!(report.retransmits > 0, "recovery must have retransmitted");
    let snap = m.counter_snapshot();
    assert!(snap.crc_nacks > 0, "receivers must have NACKed damage");
    assert_eq!(snap.retransmits, report.retransmits);
    assert!(m.faulted_threads().is_empty());
}

/// A scheduled double-bit DRAM upset is uncorrectable: the load
/// completes with an ErrVal guarded pointer (§3's poison value) and the
/// double-error counter ticks; a single-bit upset on the same word is
/// corrected and scrubbed silently.
#[test]
fn dram_double_error_yields_errval_single_corrects() {
    // The physical address under test, computed from a fault-free twin
    // build (the mapping is deterministic).
    let probe = MMachine::build(MachineConfig::small()).unwrap();
    let off = 5u64;
    let va = probe.home_va(0, 0) + off;
    let pa = probe
        .node(0)
        .mem
        .translate(va)
        .expect("home page is mapped");

    let run = |double_every: u32| {
        let mut cfg = MachineConfig::small();
        cfg.faults = Some(FaultPlanConfig {
            seed: 7,
            dram: vec![DramFaultConfig {
                flips: 1,
                double_every,
                window: (1, 2),
                addr: (pa, pa + 1),
            }],
            links: vec![],
            stalls: vec![],
        });
        let mut m = MMachine::build(cfg).unwrap();
        let prog = Arc::new(assemble(&format!("ld [r1+#{off}], r2\n halt\n")).unwrap());
        m.load_user_program(0, 0, &prog).unwrap();
        m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(0, 0));
        m.run_until_halt(200_000).unwrap();
        m
    };

    // double_every = 1: the single scheduled upset hits two bits.
    let m = run(1);
    let loaded = m.user_reg(0, 0, 0, 2).unwrap();
    let p = loaded.pointer().expect("ErrVal is a guarded pointer");
    assert_eq!(p.perm(), Perm::ErrVal, "uncorrectable read must poison");
    let snap = m.counter_snapshot();
    assert!(snap.ecc_double_errors >= 1);
    assert_eq!(m.fault_report().unwrap().dram_flips, 1);

    // double_every = 0: one bit only — SECDED corrects and scrubs.
    let m = run(0);
    let loaded = m.user_reg(0, 0, 0, 2).unwrap();
    assert_eq!(loaded.bits(), 0, "corrected read returns the true value");
    assert!(loaded.pointer().is_err() || loaded.pointer().unwrap().perm() != Perm::ErrVal);
    let snap = m.counter_snapshot();
    assert!(snap.ecc_corrected >= 1);
    assert_eq!(snap.ecc_double_errors, 0);
}

/// A fatal stall window (never lifts) freezes a running thread; the
/// watchdog notices the progress-free epochs and aborts
/// deterministically, with the diagnostic snapshot captured first.
#[test]
fn watchdog_trips_on_fatal_stall_and_stays_quiet_otherwise() {
    let looped = Arc::new(assemble("loop:\n add r2, #1, r2\n brf r0, loop\n halt\n").unwrap());

    let mut cfg = MachineConfig::small();
    cfg.watchdog_epochs = 3;
    cfg.watchdog_epoch_cycles = 512;
    cfg.faults = Some(FaultPlanConfig {
        seed: 1,
        dram: vec![],
        links: vec![],
        stalls: vec![StallFaultConfig {
            node: 0,
            window: (100, u64::MAX),
        }],
    });
    let mut m = MMachine::build(cfg).unwrap();
    m.load_user_program(0, 0, &looped).unwrap();
    let err = m
        .run_until_halt(1_000_000)
        .expect_err("watchdog must abort");
    match err {
        MachineError::WatchdogTripped { epochs, at } => {
            assert_eq!(epochs, 3);
            assert!(
                at >= 100 + 3 * 512 - 512 && at % 512 == 0,
                "trip at an epoch boundary, got {at}"
            );
        }
        other => panic!("expected WatchdogTripped, got {other}"),
    }
    let diag = m.last_diagnostic().expect("diagnostic dumped on trip");
    assert!(diag.contains("\"reason\":\"watchdog\""));
    assert!(diag.contains("\"cycle\""));

    // Same spin loop, no stall: plenty of progress, so the same
    // watchdog stays silent for the whole (bounded) run.
    let mut cfg = MachineConfig::small();
    cfg.watchdog_epochs = 3;
    cfg.watchdog_epoch_cycles = 512;
    let mut m = MMachine::build(cfg).unwrap();
    m.load_user_program(0, 0, &looped).unwrap();
    let err = m
        .run_until(20_000, |_| false)
        .expect_err("pred never holds");
    assert!(
        matches!(err, MachineError::Timeout { .. }),
        "progressing run must time out, not trip: {err}"
    );
}

/// Checkpoints refuse to restore across configuration or plan
/// mismatches, and reject garbage, without panicking.
#[test]
fn restore_rejects_mismatches_and_garbage() {
    let m = MMachine::build(MachineConfig::small()).unwrap();
    let bytes = m.checkpoint();

    let mut wider = MMachine::build(MachineConfig::with_dims(4, 1, 1)).unwrap();
    let err = wider.restore(&bytes).expect_err("dims differ");
    assert!(err.to_string().contains("mesh"), "{err}");

    let mut armed_cfg = MachineConfig::small();
    armed_cfg.faults = Some(heavy_links(3));
    let mut armed = MMachine::build(armed_cfg).unwrap();
    let err = armed.restore(&bytes).expect_err("plan presence differs");
    assert!(err.to_string().contains("fault-campaign"), "{err}");

    let mut fresh = MMachine::build(MachineConfig::small()).unwrap();
    assert!(fresh.restore(b"junk").is_err());
    assert!(fresh.restore(&[]).is_err());
    // Truncated stream: valid header, cut body.
    let mut fresh = MMachine::build(MachineConfig::small()).unwrap();
    assert!(fresh.restore(&bytes[..bytes.len() / 2]).is_err());
}
