//! Telemetry stream ↔ end-of-run totals harness.
//!
//! Two properties back the observability layer's claims (mm-telemetry
//! crate docs, "Determinism"):
//!
//! 1. **Conservation** — after `telemetry_flush()`, the per-epoch
//!    deltas in the ring sum *exactly* (integer equality, no epsilon)
//!    to the end-of-run totals: `MachineStats` for the architectural
//!    counters, `MachinePerf` for the host-side ones, and the raw
//!    fabric/coherence counters for the rest. Holds at every worker
//!    count and every epoch width, including widths that never divide
//!    the halt cycle evenly (the flush closes the partial epoch).
//! 2. **Non-interference** — telemetry only reads counters: a run with
//!    sampling on halts at the same cycle with bit-identical
//!    `MachineStats` as the same machine with sampling off.
//!
//! The busy-traffic scenario covers the issue/message/fabric counters;
//! the §4.3 coherence workload covers the `coh_*` family.

use mm_core::machine::{MMachine, MachineConfig};
use mm_isa::assemble;
use mm_isa::reg::Reg;
use mm_telemetry::{EpochSample, TelemetryConfig, MAX_SHARDS};
use proptest::prelude::*;
use std::sync::Arc;

/// Busy-traffic scenario (the bench suite's shape, rebuilt in core
/// idiom): every node runs a dependent integer chain plus one remote
/// store per iteration to its partner's home page.
fn build_busy(iters: u64, workers: usize, telemetry: TelemetryConfig) -> MMachine {
    let mut cfg = MachineConfig::with_dims(2, 2, 1);
    cfg.engine.workers = Some(workers);
    cfg.telemetry = telemetry;
    let mut m = MMachine::build(cfg).expect("valid config");
    let busy = Arc::new(
        assemble(&format!(
            "loop:\n\
             \tadd r5, #1, r5\n\
             \tadd r6, r5, r6\n\
             \tadd r7, r6, r7\n\
             \tst r5, [r8]\n\
             \teq r5, #{iters}, gcc1\n\
             \tbrf gcc1, loop\n\
             \thalt\n"
        ))
        .expect("busy program assembles"),
    );
    for i in 0..m.node_count() {
        let partner = i ^ 1;
        m.load_user_program(i, 0, &busy).expect("slot 0 loads");
        m.set_user_reg(i, 0, 0, Reg::Int(8), m.home_ptr(partner, 0));
    }
    m
}

/// The §4.3 software-coherence ping-pong (same build as the
/// differential harness), so the `coh_*` stream columns see non-zero
/// traffic.
fn build_coherent(iters: u64, workers: usize, telemetry: TelemetryConfig) -> MMachine {
    let mut cfg = MachineConfig::with_dims(2, 2, 1);
    cfg.engine.workers = Some(workers);
    cfg.telemetry = telemetry;
    let mut m = MMachine::build(cfg).expect("valid config");
    for pair in 0..2 {
        let (even, odd) = (2 * pair, 2 * pair + 1);
        let block = m.home_va(even, 2);
        m.map_coherent_page(odd, block);
        let ptr = m
            .make_ptr(mm_isa::Perm::ReadWrite, 3, block)
            .expect("block ptr");
        for (node, own, other) in [(even, 0usize, 1usize), (odd, 1, 0)] {
            let prog = mm_runtime::kernels::coherent_smooth(own, other, iters);
            m.load_user_program(node, 0, &prog).unwrap();
            m.set_user_reg(node, 0, 0, Reg::Int(1), ptr);
            m.set_user_reg(node, 0, 0, Reg::Fp(15), mm_isa::word::Word::from_f64(0.25));
        }
    }
    m
}

/// Column-wise sums over the flushed ring.
#[derive(Debug, Default, PartialEq, Eq)]
struct StreamSums {
    cycles: u64,
    instructions: u64,
    issue_probes: u64,
    node_steps: u64,
    messages: u64,
    fabric_packets: u64,
    flit_hops: u64,
    coh_packets: u64,
    coh_misses: u64,
    coh_invalidations: u64,
    coh_writebacks: u64,
    sync_retries: u64,
    shard_steps: u64,
}

fn sum_ring<'a>(samples: impl Iterator<Item = &'a EpochSample>) -> StreamSums {
    let mut t = StreamSums::default();
    for s in samples {
        t.cycles += s.end_cycle - s.start_cycle;
        t.instructions += s.instructions;
        t.issue_probes += s.issue_probes;
        t.node_steps += s.node_steps;
        t.messages += s.messages;
        t.fabric_packets += s.fabric_packets;
        t.flit_hops += s.flit_hops;
        t.coh_packets += s.coh_packets;
        t.coh_misses += s.coh_misses;
        t.coh_invalidations += s.coh_invalidations;
        t.coh_writebacks += s.coh_writebacks;
        t.sync_retries += s.sync_retries;
        t.shard_steps += s.shard_steps.iter().sum::<u64>();
    }
    t
}

/// Run `m` to halt, flush, and assert every stream column sums exactly
/// to the matching end-of-run total. Returns (halt cycle, stats) for
/// cross-run comparisons.
fn assert_stream_conserves(m: &mut MMachine, label: &str) -> (u64, mm_core::machine::MachineStats) {
    let done = m.run_until_halt(500_000).expect("run halts");
    m.telemetry_flush();
    assert!(m.faulted_threads().is_empty(), "{label}: faulted threads");

    let stats = m.stats();
    let perf = m.perf();
    let tel = m.telemetry().expect("telemetry enabled");
    assert_eq!(
        tel.ring().dropped(),
        0,
        "{label}: ring must hold every epoch"
    );
    let sums = sum_ring(tel.ring().iter());
    let expect = StreamSums {
        cycles: stats.cycles,
        instructions: stats.instructions,
        issue_probes: perf.issue_probes,
        node_steps: perf.node_steps,
        messages: stats.messages,
        fabric_packets: stats.fabric.packets,
        flit_hops: m.fabric_flit_hops(),
        coh_packets: stats.fabric.coh_packets,
        coh_misses: stats.coherence.block_fetches,
        coh_invalidations: stats.coherence.invalidations,
        coh_writebacks: stats.coherence.writebacks,
        sync_retries: stats.coherence.sync_retries,
        // Shard buckets partition node steps, whatever the shard count.
        shard_steps: perf.node_steps,
    };
    assert_eq!(sums, expect, "{label}: stream deltas must sum to totals");

    // Stream shape: indices strictly increasing from 0, cycle coverage
    // contiguous from boot to halt.
    let mut prev_end = 0u64;
    for (k, s) in tel.ring().iter().enumerate() {
        assert_eq!(s.epoch, k as u64, "{label}: epoch indices");
        assert_eq!(s.start_cycle, prev_end, "{label}: contiguous coverage");
        assert!(s.end_cycle > s.start_cycle, "{label}: empty epoch emitted");
        assert!(
            usize::try_from(s.shards).unwrap() <= MAX_SHARDS,
            "{label}: shard count"
        );
        prev_end = s.end_cycle;
    }
    // `run_until_halt` drains 64 straggler cycles past the halt, so the
    // stream's last boundary is the *clock*, not the halt cycle.
    assert_eq!(
        prev_end, stats.cycles,
        "{label}: stream must cover the whole run"
    );
    (done, stats)
}

fn ring_only(epoch_cycles: u64) -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        epoch_cycles,
        ring_epochs: 0,
        stream_path: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation at every worker count, across random epoch widths
    /// (including widths that leave a partial final epoch) and run
    /// lengths.
    #[test]
    fn epoch_deltas_sum_to_totals_at_every_worker_count(
        epoch_cycles in 16u64..400,
        iters in 24u64..96,
    ) {
        let mut reference: Option<(u64, mm_core::machine::MachineStats)> = None;
        for workers in [1usize, 2, 4] {
            let mut m = build_busy(iters, workers, ring_only(epoch_cycles));
            let (done, stats) =
                assert_stream_conserves(&mut m, &format!("busy w={workers} e={epoch_cycles}"));
            prop_assert!(stats.instructions > 0);
            prop_assert!(stats.messages > 0, "busy scenario must cross the fabric");
            // The stream rides the same engine-invariance guarantee as
            // the stats: every worker count sees the same run.
            match &reference {
                None => reference = Some((done, stats)),
                Some((d, s)) => {
                    prop_assert_eq!(*d, done, "halt cycle at {} workers", workers);
                    prop_assert_eq!(s, &stats, "stats at {} workers", workers);
                }
            }
        }
    }
}

/// Conservation for the `coh_*` columns: the coherence workload's
/// protocol traffic (fetches, invalidations, writebacks, sync retries)
/// must land in the stream exactly once each.
#[test]
fn coherence_counters_conserve_through_the_stream() {
    for workers in [1usize, 2, 4] {
        let mut m = build_coherent(6, workers, ring_only(128));
        let (_, stats) = assert_stream_conserves(&mut m, &format!("coherent w={workers}"));
        assert!(stats.fabric.coh_packets > 0, "no protocol traffic sampled");
        assert!(stats.coherence.invalidations > 0, "no ping-pong sampled");
    }
}

/// Non-interference: sampling must not perturb the simulation. Same
/// halt cycle, bit-identical stats, with telemetry off / ring-only /
/// at a pathologically small epoch.
#[test]
fn telemetry_does_not_perturb_the_run() {
    let run = |telemetry: TelemetryConfig| -> (u64, mm_core::machine::MachineStats) {
        let mut m = build_busy(64, 2, telemetry);
        let done = m.run_until_halt(500_000).expect("run halts");
        m.telemetry_flush();
        (done, m.stats())
    };
    let off = run(TelemetryConfig::default());
    assert_eq!(off, run(TelemetryConfig::enabled()), "default epoch");
    assert_eq!(off, run(ring_only(1)), "one-cycle epochs");
    assert_eq!(off, run(ring_only(977)), "prime epoch width");
}
