//! End-to-end machine tests: remote memory through the real assembly
//! handlers (the Table 1 scenario), message passing (Fig. 7), throttling
//! and coherence.

use mm_core::machine::{MMachine, MachineConfig};
use mm_isa::assemble;
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_mem::MemWord;
use mm_sim::HState;
use std::sync::Arc;

fn machine() -> MMachine {
    MMachine::build(MachineConfig::small()).expect("valid config")
}

#[test]
fn local_load_through_boot_mapping() {
    let mut m = machine();
    // Node 0's page 0 starts at VA 0; fill a word via backdoor.
    let va = m.home_va(0, 0) + 5;
    let pa_ok = m
        .node_mut(0)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(123)));
    assert!(pa_ok, "boot mapping covers the home page");

    let prog = Arc::new(assemble("ld [r1+#5], r2\n add r2, #1, r3\n halt\n").unwrap());
    let ptr = m.home_ptr(0, 0);
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), ptr);
    m.run_until_halt(10_000).unwrap();
    assert_eq!(m.user_reg(0, 0, 0, 3).unwrap().bits(), 124);
    assert!(m.faulted_threads().is_empty());
}

#[test]
fn remote_load_completes_through_handlers() {
    let mut m = machine();
    // Put data on node 1's home page.
    let va = m.home_va(1, 0) + 7;
    assert!(m
        .node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(777))));

    // Node 0 loads it: LTLB miss → remote read message → reply → wrreg.
    let prog = Arc::new(assemble("ld [r1+#7], r2\n add r2, #1, r3\n halt\n").unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));
    let t = m.run_until_halt(50_000).unwrap();
    assert_eq!(m.user_reg(0, 0, 0, 3).unwrap().bits(), 778);
    assert!(m.faulted_threads().is_empty());
    // Remote read is slow but bounded (paper: 138–202 cycles).
    assert!(t > 30, "suspiciously fast remote read: {t}");
    assert!(t < 600, "remote read too slow: {t}");
}

#[test]
fn remote_store_fig7_completes() {
    let mut m = machine();
    let va = m.home_va(1, 0) + 3;

    let prog = Arc::new(assemble("st r2, [r1+#3]\n halt\n").unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));
    m.set_user_reg(0, 0, 0, Reg::Int(2), Word::from_u64(4242));
    m.run_until_halt(50_000).unwrap();
    // Give the write time to land remotely, then check node 1's memory.
    m.run_cycles(300);
    let got = m.node(1).mem.peek_va(va).expect("mapped at home");
    assert_eq!(got.word.bits(), 4242, "Fig. 7 remote store did not land");
    assert!(m.faulted_threads().is_empty());
}

#[test]
fn remote_read_then_local_hit_is_fast() {
    // After the LTLB-miss path completes once, the *home* node's own
    // accesses still hit locally; and a second remote read from node 0
    // takes the remote path again (non-cached shared memory, §4.2).
    let mut m = machine();
    let va = m.home_va(1, 0);
    assert!(m
        .node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(5))));

    let prog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));
    m.run_until_halt(50_000).unwrap();
    assert_eq!(m.user_reg(0, 0, 0, 3).unwrap().bits(), 5);

    // Second access from a different user slot.
    let prog2 = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    m.load_user_program(0, 1, &prog2).unwrap();
    m.set_user_reg(0, 0, 1, Reg::Int(1), m.home_ptr(1, 0));
    m.run_until_halt(50_000).unwrap();
    assert_eq!(m.user_reg(0, 0, 1, 3).unwrap().bits(), 5);
}

#[test]
fn user_level_message_round_trip() {
    // A user thread on node 0 sends a message carrying a word to node 1's
    // address space; the remote-write handler (Fig. 7b) performs it; the
    // sender then reads it back remotely.
    let mut m = machine();
    let target = m.home_va(1, 1) + 9;

    let send_prog = Arc::new(assemble("mov #31337, mc1\n send r10, r11, #1\n halt\n").unwrap());
    m.load_user_program(0, 0, &send_prog).unwrap();
    let ptr = m.make_ptr(mm_isa::Perm::ReadWrite, 0, target).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(10), ptr);
    let write_dip = m.image().write_dip;
    m.set_user_reg(0, 0, 0, Reg::Int(11), write_dip);
    m.run_until_halt(50_000).unwrap();
    m.run_cycles(300);

    let got = m.node(1).mem.peek_va(target).expect("mapped");
    assert_eq!(got.word.bits(), 31337);
    assert!(m.faulted_threads().is_empty());
}

#[test]
fn timeline_captures_remote_read_phases() {
    use mm_core::timeline::Phase;
    let mut m = machine();
    let va = m.home_va(1, 0);
    assert!(m
        .node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(1))));

    let prog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));
    m.clear_timeline();
    m.run_until_halt(50_000).unwrap();

    let tl = m.timeline();
    let miss = tl
        .first_cycle(|p| matches!(p, Phase::EventEnqueued { node: 0, class: 1 }))
        .expect("LTLB miss event");
    let req_sent = tl
        .first_cycle(|p| {
            matches!(
                p,
                Phase::PacketInjected {
                    node: 0,
                    priority: mm_isa::op::Priority::P0,
                    kind: mm_core::timeline::PacketKind::Message
                }
            )
        })
        .expect("request injected");
    let req_arrived = tl
        .first_cycle(|p| {
            matches!(
                p,
                Phase::PacketDelivered {
                    node: 1,
                    kind: mm_core::timeline::PacketKind::Message,
                    ..
                }
            )
        })
        .expect("request delivered");
    let reply_sent = tl
        .first_cycle(|p| {
            matches!(
                p,
                Phase::PacketInjected {
                    node: 1,
                    priority: mm_isa::op::Priority::P1,
                    kind: mm_core::timeline::PacketKind::Message
                }
            )
        })
        .expect("reply injected");
    let done = tl
        .first_cycle(|p| matches!(p, Phase::UserHalted { node: 0, .. }))
        .expect("user finished");
    assert!(miss < req_sent, "handler runs after the event");
    assert!(req_sent < req_arrived);
    assert!(req_arrived < reply_sent);
    assert!(reply_sent < done);
    // Network transit ≈5 cycles to a neighbour (§4.2).
    assert!(
        req_arrived - req_sent <= 8,
        "transit {}",
        req_arrived - req_sent
    );
}

#[test]
fn coherence_read_share_then_write_invalidate() {
    // Node 0 marks a block INVALID locally... exercised via the firmware:
    // node 0 *caches* node 1's block by reading through the coherence
    // path (block-status fault), then node 1 writes it, invalidating
    // node 0's copy.
    let mut m = machine();
    let va = m.home_va(1, 2); // block 0 of node 1's page 2
    assert!(m
        .node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(66))));

    // Force node 0 to take the coherent path: install a local frame for
    // the page with every block INVALID — exactly the state after boot
    // for locally-cached remote pages (§4.3).
    use mm_mem::ltlb::{BlockStatus, LtlbEntry};
    let vpn = va / 512;
    {
        let node0 = m.node_mut(0);
        let lpt = node0.mem.lpt().unwrap();
        let entry = LtlbEntry::uniform(vpn, 600, BlockStatus::Invalid, 0);
        let slot = lpt.insert(node0.mem.sdram_mut(), &entry).unwrap();
        assert!(node0.mem.tlb_install(slot));
    }

    let prog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 2));
    m.run_until_halt(50_000).unwrap();
    assert_eq!(m.user_reg(0, 0, 0, 3).unwrap().bits(), 66, "block fetched");
    assert!(m.stats().coherence.block_fetches >= 1);

    // The block is now READ-ONLY at node 0: a local write faults into the
    // coherence engine, which upgrades it (invalidating nobody else) —
    // and the write proceeds.
    let wprog = Arc::new(assemble("st r2, [r1]\n halt\n").unwrap());
    m.load_user_program(0, 1, &wprog).unwrap();
    m.set_user_reg(0, 0, 1, Reg::Int(1), m.home_ptr(1, 2));
    m.set_user_reg(0, 0, 1, Reg::Int(2), Word::from_u64(67));
    m.run_until_halt(50_000).unwrap();
    m.run_cycles(300);
    assert_eq!(
        m.node(0).mem.peek_va(va).unwrap().word.bits(),
        67,
        "upgraded write landed in the local cached copy"
    );
}

#[test]
fn remote_write_fault_travels_as_protocol_messages() {
    // PR 5 acceptance: the coherence engine holds no `&mut` access to
    // remote nodes — one remote-write block fault must be visible on
    // the fabric as protocol packets (FETCH-WRITE to the home, the
    // grant back; the grant's acceptance credit is a separate packet
    // kind), not teleported state.
    let mut m = machine();
    let va = m.home_va(1, 2);
    assert!(m
        .node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(9))));
    m.map_coherent_page(0, va);

    let before = m.stats().fabric.coh_packets;
    assert_eq!(before, 0, "no protocol traffic before the fault");
    let wprog = Arc::new(assemble("st r2, [r1]\n halt\n").unwrap());
    m.load_user_program(0, 0, &wprog).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 2));
    m.set_user_reg(0, 0, 0, Reg::Int(2), Word::from_u64(77));
    m.run_until_halt(50_000).unwrap();
    m.run_cycles(400);

    let stats = m.stats();
    assert!(
        stats.fabric.coh_packets >= 2,
        "expected at least FETCH-WRITE + GRANT-WRITE on the fabric, saw {}",
        stats.fabric.coh_packets
    );
    assert_eq!(stats.coherence.block_fetches, 1, "one fetch serviced");
    assert_eq!(stats.coherence.unknown_events, 0);
    assert_eq!(
        m.node(0).mem.peek_va(va).unwrap().word.bits(),
        77,
        "granted write landed in the requester's local copy"
    );
    // The home invalidated its own boot-mapped copy when it granted
    // exclusivity, so a subsequent home write faults back through the
    // protocol instead of silently diverging.
    let hprog = Arc::new(assemble("st r2, [r1]\n halt\n").unwrap());
    m.load_user_program(1, 0, &hprog).unwrap();
    m.set_user_reg(1, 0, 0, Reg::Int(1), m.home_ptr(1, 2));
    m.set_user_reg(1, 0, 0, Reg::Int(2), Word::from_u64(78));
    m.run_until_halt(50_000).unwrap();
    m.run_cycles(600);
    let after = m.stats();
    assert!(
        after.coherence.writebacks >= 1,
        "home write-fault must recall the remote dirty copy"
    );
    assert_eq!(m.node(1).mem.peek_va(va).unwrap().word.bits(), 78);
}

#[test]
fn throttling_send_flood_makes_progress() {
    // Flood node 1's queue from node 0; with capacity 16 and returns,
    // every message must eventually be deliverable (the consumer drains).
    let mut m = machine();
    // Consumer on node 1 cluster 2 is the message dispatcher; user sends
    // use the remote-write DIP so the dispatcher consumes them.
    let mut src = String::new();
    for i in 0..24 {
        src.push_str(&format!("mov #{}, mc1\n send r10, r11, #1\n", 1000 + i));
    }
    src.push_str("halt\n");
    let prog = Arc::new(assemble(&src).unwrap());
    m.load_user_program(0, 0, &prog).unwrap();
    let target = m.home_va(1, 3);
    let ptr = m.make_ptr(mm_isa::Perm::ReadWrite, 0, target).unwrap();
    m.set_user_reg(0, 0, 0, Reg::Int(10), ptr);
    let write_dip = m.image().write_dip;
    m.set_user_reg(0, 0, 0, Reg::Int(11), write_dip);
    m.run_until_halt(200_000).unwrap();
    m.run_cycles(5_000);
    // All 24 stores to the same word: the last value observed must be one
    // of the sent values, and the handler must have consumed all of them.
    assert_eq!(m.node(1).net.stats().received, 24);
    let got = m.node(1).mem.peek_va(target).unwrap().word.bits();
    assert!((1000..1024).contains(&got), "unexpected value {got}");
    assert!(m.faulted_threads().is_empty());
}

#[test]
fn recall_never_overtakes_a_charge_delayed_grant() {
    // Regression (PR 5 review): with several read-sharers, a write
    // grant is delayed by `invalidate_cycles` per sharer. A second
    // writer's fetch used to compose a Recall to the new owner in that
    // window; the recall overtook the grant, the "owner" ran out of
    // patience with nothing to surrender, and garbage was written back
    // over the home's fresh copy. Crank the charge so the grant delay
    // (3 sharers × 200) far exceeds the recall patience and prove the
    // two writes still serialize correctly.
    let mut cfg = MachineConfig::with_dims(2, 2, 1);
    cfg.coherence.invalidate_cycles = 200;
    let mut m = MMachine::build(cfg).expect("valid config");
    let block = m.home_va(0, 2);
    assert!(m
        .node_mut(0)
        .mem
        .poke_va(block, MemWord::new(Word::from_u64(7))));
    for node in 1..4 {
        m.map_coherent_page(node, block);
    }
    // Read-share the block on every remote node.
    let rprog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n").unwrap());
    for node in 1..4 {
        m.load_user_program(node, 0, &rprog).unwrap();
        m.set_user_reg(node, 0, 0, Reg::Int(1), m.home_ptr(0, 2));
    }
    m.run_until_halt(100_000).unwrap();
    for node in 1..4 {
        assert_eq!(m.user_reg(node, 0, 0, 3).unwrap().bits(), 7);
    }
    // Two writers race: node 1 takes ownership (grant delayed ~600
    // cycles by three invalidations), node 2's write forces a recall of
    // node 1 while that grant is still pending.
    let w =
        |val: u64| Arc::new(assemble(&format!("mov #{val}, r2\n st r2, [r1]\n halt\n")).unwrap());
    m.load_user_program(1, 1, &w(111)).unwrap();
    m.set_user_reg(1, 0, 1, Reg::Int(1), m.home_ptr(0, 2));
    m.load_user_program(2, 1, &w(222)).unwrap();
    let word1 = m.make_ptr(mm_isa::Perm::ReadWrite, 0, block + 1).unwrap();
    m.set_user_reg(2, 0, 1, Reg::Int(1), word1);
    m.run_until_halt(200_000).unwrap();
    m.run_cycles(2_000);
    assert!(m.faulted_threads().is_empty());
    // Both writes must survive: 111 in word 0 (node 1's), 222 in word 1
    // (node 2's) — visible in the freshest copy of each word.
    for (off, want) in [(0u64, 111u64), (1, 222)] {
        let freshest = (0..4)
            .filter_map(|n| m.node(n).mem.peek_va(block + off))
            .map(|w| w.word.bits())
            .max()
            .unwrap();
        assert_eq!(freshest, want, "word {off} lost a write");
    }
    assert!(m.stats().coherence.writebacks >= 1, "a recall must happen");
}

#[test]
fn saturated_queues_neither_leak_credits_nor_deadlock() {
    // PR 5 (return-to-sender credit audit): with a one-message queue and
    // two chatty nodes flooding each other — including remote *reads*,
    // whose P1 replies were the phantom-credit source before the fix —
    // messages must bounce, back off, resend and all eventually land,
    // and after the drain every interface's credit counter must be back
    // at exactly its initial value.
    let mut cfg = MachineConfig::small();
    cfg.node.iface.msg_queue_capacity = 1;
    let mut m = MMachine::build(cfg).expect("valid config");
    let initial = m.node(0).net.credits();

    let mut src = String::new();
    for i in 0..12 {
        src.push_str(&format!("mov #{}, mc1\n send r10, r11, #1\n", 100 + i));
    }
    // A remote load at the end: LTLB-miss handler sends a read request,
    // the peer's handler answers with a P1 reply.
    src.push_str("ld [r8], r2\n add r2, #0, r3\n halt\n");
    let prog = Arc::new(assemble(&src).unwrap());
    for node in 0..2 {
        let peer = 1 - node;
        let target = m.home_va(peer, 3);
        let peer_home = m.home_va(peer, 0);
        assert!(m
            .node_mut(peer)
            .mem
            .poke_va(peer_home, MemWord::new(Word::from_u64(5))));
        m.load_user_program(node, 0, &prog).unwrap();
        let ptr = m.make_ptr(mm_isa::Perm::ReadWrite, 0, target).unwrap();
        m.set_user_reg(node, 0, 0, Reg::Int(10), ptr);
        let write_dip = m.image().write_dip;
        m.set_user_reg(node, 0, 0, Reg::Int(11), write_dip);
        m.set_user_reg(node, 0, 0, Reg::Int(8), m.home_ptr(peer, 0));
    }
    m.run_until_halt(400_000).expect("flood must not deadlock");
    m.run_cycles(10_000); // drain every return, resend and credit
    assert!(m.faulted_threads().is_empty());
    for node in 0..2 {
        let st = m.node(node).net.stats();
        assert_eq!(
            st.received, 14,
            "node {node}: 12 writes + 1 read request + 1 read reply must all land"
        );
        assert_eq!(m.user_reg(node, 0, 0, 3).unwrap().bits(), 5);
        assert_eq!(
            m.node(node).net.credits(),
            initial,
            "node {node}: credit counter must return to its initial value \
             (a surplus means replies minted phantom credits; a deficit \
             means a bounced message leaked its reserved slot)"
        );
    }
    let returns: u64 = (0..2).map(|n| m.node(n).net.stats().returned_here).sum();
    assert!(returns > 0, "capacity 1 must actually bounce messages");
}

#[test]
fn four_node_machine_runs() {
    let mut m = MMachine::build(MachineConfig::with_dims(2, 2, 1)).unwrap();
    assert_eq!(m.node_count(), 4);
    // Every node computes locally; node 3 reads node 0's memory remotely.
    for i in 0..4 {
        let prog = Arc::new(assemble(&format!("add r0, #{}, r1\n halt\n", i + 1)).unwrap());
        m.load_user_program(i, 0, &prog).unwrap();
    }
    let va = m.home_va(0, 1);
    assert!(m
        .node_mut(0)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(55))));
    let rprog = Arc::new(assemble("ld [r2], r4\n add r4, #0, r5\n halt\n").unwrap());
    m.load_user_program(3, 1, &rprog).unwrap();
    m.set_user_reg(3, 0, 1, Reg::Int(2), m.home_ptr(0, 1));
    m.run_until_halt(100_000).unwrap();
    for i in 0..4 {
        assert_eq!(m.user_reg(i, 0, 0, 1).unwrap().bits(), i as u64 + 1);
    }
    assert_eq!(m.user_reg(3, 0, 1, 5).unwrap().bits(), 55);
    assert!(m.faulted_threads().is_empty());
}

#[test]
fn event_handlers_stay_resident() {
    let mut m = machine();
    m.run_cycles(100);
    for i in 0..2 {
        for c in 1..4 {
            assert_eq!(
                m.node(i).thread_state(c, mm_sim::EVENT_SLOT),
                HState::Running,
                "handler on node {i} cluster {c} died"
            );
        }
    }
}
