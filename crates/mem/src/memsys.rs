//! The node memory system: banked cache front-end, LTLB translation,
//! block-status checks, SDRAM fills and event generation.
//!
//! Requests arrive from the clusters over the M-Switch (modelled by the
//! per-bank input queues — consecutive addresses land in different banks,
//! §2), hits answer over the C-Switch after the pipelined bank latency,
//! and misses run through LTLB translation and block-status checks before
//! an SDRAM line fill. Anything the hardware cannot finish — LTLB miss,
//! block-status fault, synchronizing fault — becomes an asynchronous
//! *event* for the software handlers (§3.3).

use crate::cache::{Cache, CacheConfig, CacheStats, StoreOutcome, LINE_WORDS};
use crate::dram::{MemWord, Sdram, SdramConfig, SdramStats};
use crate::lpt::Lpt;
use crate::ltlb::{BlockStatus, Ltlb, LtlbEntry, LtlbStats, PAGE_WORDS};
use mm_faults::{CkptError, Dec, Enc};
use mm_isa::op::{SyncPost, SyncPre};
use mm_isa::pointer::{GuardedPointer, Perm};
use mm_isa::word::Word;
use mm_sched::ReadyQueue;
use std::collections::VecDeque;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// A memory request as it leaves a cluster's memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the response.
    pub id: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Virtual word address (physical when `phys` is set).
    pub va: u64,
    /// Store data (ignored for loads).
    pub data: Word,
    /// Whether the stored word carries the pointer tag.
    pub data_ptr_tag: bool,
    /// Synchronization-bit precondition.
    pub pre: SyncPre,
    /// Synchronization-bit postcondition.
    pub post: SyncPost,
    /// Opaque routing tag (the simulator packs the destination register
    /// address here so replies and event records can name it).
    pub tag: u64,
    /// Physical addressing: bypass translation and the cache with a fixed
    /// short latency. Used by system software whose data structures the
    /// paper assumes to cache-hit (§4.2).
    pub phys: bool,
}

impl MemRequest {
    /// A plain virtual-address load.
    #[must_use]
    pub fn load(id: u64, va: u64, tag: u64) -> MemRequest {
        MemRequest {
            id,
            kind: AccessKind::Load,
            va,
            data: Word::ZERO,
            data_ptr_tag: false,
            pre: SyncPre::Any,
            post: SyncPost::Unchanged,
            tag,
            phys: false,
        }
    }

    /// A plain virtual-address store.
    #[must_use]
    pub fn store(id: u64, va: u64, data: Word, tag: u64) -> MemRequest {
        MemRequest {
            id,
            kind: AccessKind::Store,
            va,
            data,
            data_ptr_tag: data.is_pointer(),
            pre: SyncPre::Any,
            post: SyncPost::Unchanged,
            tag,
            phys: false,
        }
    }
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The originating request.
    pub req: MemRequest,
    /// Loaded value (stores echo the stored value).
    pub value: Word,
    /// Cycle at which the result is architecturally visible (register
    /// written / line fully loaded).
    pub ready: u64,
}

/// Why the hardware punted to software.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEventKind {
    /// No LTLB entry for the page: the software handler walks the LPT or
    /// discovers the page is remote (§4.2).
    LtlbMiss,
    /// The block's status bits forbid the access (§4.3).
    BlockStatusFault {
        /// The offending block's current status.
        status: BlockStatus,
    },
    /// A synchronizing load/store found the wrong full/empty state (§2).
    SyncFault {
        /// The synchronization bit's value at the time of the access.
        sync_was: bool,
    },
    /// SECDED detected an uncorrectable error in the fetched line.
    EccError,
}

/// An asynchronous event record destined for the event V-Thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Cycle at which the event was enqueued.
    pub at: u64,
    /// What happened.
    pub kind: MemEventKind,
    /// The faulting request, preserved so the handler can complete or
    /// replay it ("the faulting operation and its operands are
    /// specifically identified in the event record", §3.3).
    pub req: MemRequest,
}

/// Latency and capacity configuration for the whole memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// SDRAM geometry and timing.
    pub sdram: SdramConfig,
    /// LTLB entries.
    pub ltlb_entries: usize,
    /// Cycles from submission to a load hit's register write (paper: 3,
    /// "including switch traversal").
    pub read_hit_latency: u64,
    /// Cycles from submission to a store hit's completion (paper: 2).
    pub write_hit_latency: u64,
    /// Cycles to determine a miss (Fig. 9: "accesses the cache and
    /// misses (2 cycles)").
    pub miss_detect: u64,
    /// Cycles for the LTLB lookup + block-status check on the miss path.
    pub translate_latency: u64,
    /// Fixed latency of physical-addressed system accesses (the paper
    /// assumes handler data structures cache-hit, §4.2).
    pub phys_read_latency: u64,
    /// Fixed latency of physical-addressed system stores.
    pub phys_write_latency: u64,
    /// Depth of each bank's input queue; a full queue stalls the memory
    /// unit (structural hazard).
    pub bank_queue_depth: usize,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            cache: CacheConfig::default(),
            sdram: SdramConfig::default(),
            ltlb_entries: 64,
            read_hit_latency: 3,
            write_hit_latency: 2,
            miss_detect: 2,
            translate_latency: 1,
            phys_read_latency: 3,
            phys_write_latency: 2,
            bank_queue_depth: 4,
        }
    }
}

/// Aggregated statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Requests accepted.
    pub requests: u64,
    /// Responses produced.
    pub responses: u64,
    /// Events raised, by rough class.
    pub ltlb_miss_events: u64,
    /// Block-status fault events.
    pub block_status_events: u64,
    /// Synchronizing fault events.
    pub sync_fault_events: u64,
    /// Uncorrectable ECC events.
    pub ecc_events: u64,
    /// Requests rejected because a bank queue was full.
    pub bank_stalls: u64,
}

/// The complete per-node memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    // NOTE: ticked from worker threads by the machine's sharded engine —
    // keep every field owned (no `Rc`/`RefCell`); the assert below the
    // struct enforces `Send` at compile time.
    cfg: MemConfig,
    cache: Cache,
    ltlb: Ltlb,
    sdram: Sdram,
    lpt: Option<Lpt>,
    bank_q: Vec<VecDeque<MemRequest>>,
    /// Requests queued across all banks (`O(1)` has-work check on the
    /// per-cycle fast path).
    bank_backlog: usize,
    miss_q: VecDeque<(u64, MemRequest)>,
    /// Completed requests staged until their ready cycle, popped in
    /// `(ready, completion order)` — no per-cycle scans.
    responses: ReadyQueue<MemResponse>,
    events: Vec<MemEvent>,
    stats: MemStats,
}

const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<MemorySystem>();

impl MemorySystem {
    /// Build an idle memory system.
    #[must_use]
    pub fn new(cfg: MemConfig) -> MemorySystem {
        let banks = cfg.cache.banks as usize;
        MemorySystem {
            cache: Cache::new(cfg.cache.clone()),
            ltlb: Ltlb::new(cfg.ltlb_entries),
            sdram: Sdram::new(cfg.sdram.clone()),
            lpt: None,
            bank_q: (0..banks).map(|_| VecDeque::new()).collect(),
            bank_backlog: 0,
            miss_q: VecDeque::new(),
            responses: ReadyQueue::new(),
            events: Vec::new(),
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Attach the node's LPT (done at boot). Needed for LTLB-eviction
    /// write-back and the `tlbwr` refill path.
    pub fn set_lpt(&mut self, lpt: Lpt) {
        self.lpt = Some(lpt);
    }

    /// The attached LPT, if booted.
    #[must_use]
    pub fn lpt(&self) -> Option<Lpt> {
        self.lpt
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Cache statistics snapshot.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// LTLB statistics snapshot.
    #[must_use]
    pub fn ltlb_stats(&self) -> LtlbStats {
        self.ltlb.stats()
    }

    /// SDRAM statistics snapshot.
    #[must_use]
    pub fn sdram_stats(&self) -> SdramStats {
        self.sdram.stats()
    }

    /// Would a request for `va` be accepted right now? (The issue stage's
    /// structural-hazard check.)
    #[must_use]
    pub fn can_accept(&self, va: u64, phys: bool) -> bool {
        let bank = if phys { 0 } else { self.cache.bank_of(va) };
        self.bank_q[bank].len() < self.cfg.bank_queue_depth
    }

    /// Submit a request during cycle `now`. Returns the request back if
    /// the target bank's queue is full (the memory unit must retry).
    ///
    /// # Errors
    ///
    /// The rejected request is returned unchanged.
    pub fn submit(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let bank = if req.phys {
            0 // physical accesses ride bank 0's port
        } else {
            self.cache.bank_of(req.va)
        };
        if self.bank_q[bank].len() >= self.cfg.bank_queue_depth {
            self.stats.bank_stalls += 1;
            return Err(req);
        }
        self.stats.requests += 1;
        self.bank_backlog += 1;
        self.bank_q[bank].push_back(req);
        Ok(())
    }

    /// Advance one cycle, draining completions into caller-owned scratch
    /// buffers: banks each retire one request, the miss engine services
    /// due misses, and every response whose ready cycle has arrived is
    /// appended to `responses` (in `(ready, completion order)`), every
    /// pending event to `events`.
    ///
    /// This is the allocation-free form of [`MemorySystem::step`]: the
    /// buffers are appended to, never reallocated by this call once they
    /// have reached their steady-state capacity, so the node's cycle
    /// kernel can recycle one pair of buffers across every cycle (and
    /// the machine's worker pool one pair per worker). A memory system
    /// belongs to exactly one node and shares no state with its
    /// siblings, so the sharded engine may tick different nodes' memory
    /// systems concurrently from worker threads.
    pub fn step_into(
        &mut self,
        now: u64,
        responses: &mut Vec<MemResponse>,
        events: &mut Vec<MemEvent>,
    ) {
        // Fast path: a fully idle memory system (the common case on a
        // large mesh) is four inline header reads, no queue traffic.
        if self.bank_backlog == 0
            && self.miss_q.is_empty()
            && self.responses.is_empty()
            && self.events.is_empty()
        {
            return;
        }
        if self.bank_backlog > 0 {
            for bank in 0..self.bank_q.len() {
                if let Some(req) = self.bank_q[bank].pop_front() {
                    self.bank_backlog -= 1;
                    self.access(now, req);
                }
            }
        }
        while let Some(&(ready, req)) = self.miss_q.front() {
            if ready > now {
                break;
            }
            self.miss_q.pop_front();
            self.handle_miss(ready.max(now), req);
        }
        let popped = self.responses.drain_due_into(now, responses);
        self.stats.responses += popped as u64;
        events.append(&mut self.events);
    }

    /// Advance one cycle, returning completions in fresh vectors — the
    /// convenience form of [`MemorySystem::step_into`] for tests and
    /// debug paths (it allocates; the cycle engines use the drain form).
    pub fn step(&mut self, now: u64) -> (Vec<MemResponse>, Vec<MemEvent>) {
        let mut responses = Vec::new();
        let mut events = Vec::new();
        self.step_into(now, &mut responses, &mut events);
        (responses, events)
    }

    /// First-stage prefetch: hint the cache lines holding the queue
    /// *headers* this system's per-cycle fast path reads (`bank_q`,
    /// `bank_backlog`, `miss_q`, `responses`, `events` — the tail of the
    /// struct, several lines past `&self`). Pure address computation:
    /// nothing is dereferenced, so the owner may issue this for a
    /// not-yet-resident system several walk slots ahead.
    #[inline]
    pub fn prefetch_meta(&self) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SAFETY: prefetch is a pure performance hint on valid
            // addresses derived from live references.
            unsafe {
                _mm_prefetch(std::ptr::from_ref(&self.bank_q).cast(), _MM_HINT_T0);
                _mm_prefetch(std::ptr::from_ref(&self.responses).cast(), _MM_HINT_T0);
                _mm_prefetch(std::ptr::from_ref(&self.events).cast(), _MM_HINT_T0);
            }
        }
    }

    /// Second-stage prefetch: with the headers resident (see
    /// [`MemorySystem::prefetch_meta`]), chase the storage pointers the
    /// coming `step_into` will dereference — the response heap and, when
    /// requests are queued, the bank-queue ring headers.
    #[inline]
    pub fn prefetch_deep(&self) {
        self.responses.prefetch();
        #[cfg(target_arch = "x86_64")]
        if self.bank_backlog > 0 {
            // SAFETY: prefetch is a pure performance hint on a valid
            // address derived from a live allocation.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.bank_q.as_ptr().cast(),
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }

    /// Are all queues drained (useful for run-to-idle loops)?
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.bank_backlog == 0
            && self.miss_q.is_empty()
            && self.responses.is_empty()
            && self.events.is_empty()
    }

    /// The earliest future cycle (strictly after `now`) at which a
    /// [`MemorySystem::step`] can do work, assuming no new submissions:
    /// a queued bank request pops next cycle, a staged miss fires at its
    /// translate deadline, and a pipelined response or pending event
    /// surfaces at its ready cycle. `None` when fully idle — the cycle
    /// engine's license to skip this memory system entirely.
    #[must_use]
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut fold = |t: u64| best = Some(best.map_or(t, |b| b.min(t)));
        if self.bank_backlog > 0 || !self.events.is_empty() {
            fold(now + 1);
        }
        // The miss queue pops front-to-back and deadlines are pushed with
        // monotonically non-decreasing `now` plus constant latencies, so
        // the front entry is the earliest; responses are a ready-ordered
        // queue with an O(1) minimum.
        if let Some(&(ready, _)) = self.miss_q.front() {
            fold(ready.max(now + 1));
        }
        if let Some(ready) = self.responses.next_ready() {
            fold(ready.max(now + 1));
        }
        best
    }

    fn respond(&mut self, req: MemRequest, value: Word, ready: u64) {
        self.responses
            .push(ready, MemResponse { req, value, ready });
    }

    fn raise(&mut self, at: u64, kind: MemEventKind, req: MemRequest) {
        match kind {
            MemEventKind::LtlbMiss => self.stats.ltlb_miss_events += 1,
            MemEventKind::BlockStatusFault { .. } => self.stats.block_status_events += 1,
            MemEventKind::SyncFault { .. } => self.stats.sync_fault_events += 1,
            MemEventKind::EccError => self.stats.ecc_events += 1,
        }
        self.events.push(MemEvent { at, kind, req });
    }

    /// Does the sync precondition hold for a word whose bit is `sync`?
    fn pre_ok(pre: SyncPre, sync: bool) -> bool {
        match pre {
            SyncPre::Any => true,
            SyncPre::Full => sync,
            SyncPre::Empty => !sync,
        }
    }

    fn post_sync(post: SyncPost, old: bool) -> bool {
        match post {
            SyncPost::Unchanged => old,
            SyncPost::SetFull => true,
            SyncPost::SetEmpty => false,
        }
    }

    /// First-stage (bank) access.
    fn access(&mut self, now: u64, req: MemRequest) {
        if req.phys {
            self.phys_access(now, req);
            return;
        }
        match req.kind {
            AccessKind::Load => match self.cache.read(req.va) {
                Some(mw) => {
                    if !Self::pre_ok(req.pre, mw.sync) {
                        self.raise(
                            now + self.cfg.miss_detect,
                            MemEventKind::SyncFault { sync_was: mw.sync },
                            req,
                        );
                        return;
                    }
                    if req.post != SyncPost::Unchanged {
                        match self
                            .cache
                            .set_sync(req.va, Self::post_sync(req.post, mw.sync))
                        {
                            StoreOutcome::Written => {}
                            _ => {
                                self.raise(
                                    now + self.cfg.miss_detect,
                                    MemEventKind::BlockStatusFault {
                                        status: self.block_status_of(req.va),
                                    },
                                    req,
                                );
                                return;
                            }
                        }
                    }
                    self.respond(req, mw.word, now + self.cfg.read_hit_latency);
                }
                None => self.enqueue_miss(now, req),
            },
            AccessKind::Store => {
                // Peek first: sync precondition applies to the old word.
                match self.cache.peek(req.va) {
                    Some(old) => {
                        if !Self::pre_ok(req.pre, old.sync) {
                            self.raise(
                                now + self.cfg.miss_detect,
                                MemEventKind::SyncFault { sync_was: old.sync },
                                req,
                            );
                            return;
                        }
                        let new = MemWord::with_sync(
                            Word::from_raw(req.data.bits(), req.data_ptr_tag),
                            Self::post_sync(req.post, old.sync),
                        );
                        match self.cache.write(req.va, new) {
                            StoreOutcome::Written => {
                                self.mark_dirty(req.va);
                                self.respond(req, req.data, now + self.cfg.write_hit_latency);
                            }
                            StoreOutcome::NotWritable => {
                                self.raise(
                                    now + self.cfg.miss_detect,
                                    MemEventKind::BlockStatusFault {
                                        status: self.block_status_of(req.va),
                                    },
                                    req,
                                );
                            }
                            StoreOutcome::Miss => self.enqueue_miss(now, req),
                        }
                    }
                    None => self.enqueue_miss(now, req),
                }
            }
        }
    }

    /// Physical accesses: fixed-latency, uncached backdoor used by system
    /// software (charged, but bypassing translation).
    fn phys_access(&mut self, now: u64, req: MemRequest) {
        match req.kind {
            AccessKind::Load => {
                let mw = self.sdram.peek(req.va);
                if !Self::pre_ok(req.pre, mw.sync) {
                    self.raise(now, MemEventKind::SyncFault { sync_was: mw.sync }, req);
                    return;
                }
                if req.post != SyncPost::Unchanged {
                    let mut cell = mw;
                    cell.sync = Self::post_sync(req.post, mw.sync);
                    self.sdram.poke(req.va, cell);
                }
                self.respond(req, mw.word, now + self.cfg.phys_read_latency);
            }
            AccessKind::Store => {
                let old = self.sdram.peek(req.va);
                if !Self::pre_ok(req.pre, old.sync) {
                    self.raise(now, MemEventKind::SyncFault { sync_was: old.sync }, req);
                    return;
                }
                let cell = MemWord::with_sync(
                    Word::from_raw(req.data.bits(), req.data_ptr_tag),
                    Self::post_sync(req.post, old.sync),
                );
                self.sdram.poke(req.va, cell);
                self.respond(req, req.data, now + self.cfg.phys_write_latency);
            }
        }
    }

    fn enqueue_miss(&mut self, now: u64, req: MemRequest) {
        self.miss_q
            .push_back((now + self.cfg.miss_detect + self.cfg.translate_latency, req));
    }

    /// Block status of `va` as recorded in the LTLB (for fault reporting).
    fn block_status_of(&self, va: u64) -> BlockStatus {
        self.ltlb
            .probe(va / PAGE_WORDS)
            .map_or(BlockStatus::Invalid, |e| {
                e.status_for_offset(va % PAGE_WORDS)
            })
    }

    /// Second-stage miss handling: translate, check, fill.
    fn handle_miss(&mut self, now: u64, req: MemRequest) {
        // The line may have been filled by an earlier miss to the same block.
        if self.cache.contains(req.va) {
            self.access(now, req);
            return;
        }
        let vpn = req.va / PAGE_WORDS;
        let offset = req.va % PAGE_WORDS;
        let Some(entry) = self.ltlb.lookup(vpn).copied() else {
            self.raise(now, MemEventKind::LtlbMiss, req);
            return;
        };
        let status = entry.status_for_offset(offset);
        // A synchronizing load mutates the word's full/empty bit, so like
        // a store it needs a writable copy: filling a READ-ONLY shared
        // block and silently dropping the SetEmpty postcondition would
        // let two consumers take the same full word (§2's atomicity is
        // exactly the pre/post pair executing against one copy).
        let allowed = match req.kind {
            AccessKind::Load if req.post == SyncPost::Unchanged => status.readable(),
            AccessKind::Load | AccessKind::Store => status.writable(),
        };
        if !allowed {
            self.raise(now, MemEventKind::BlockStatusFault { status }, req);
            return;
        }

        let pa = entry.translate(offset);
        let pa_line = pa & !(LINE_WORDS - 1);
        let va_line = req.va & !(LINE_WORDS - 1);
        let mut raw = [None; LINE_WORDS as usize];
        let (first, last) = self.sdram.read_into(now, pa_line, &mut raw);
        let mut line = [MemWord::default(); LINE_WORDS as usize];
        let mut ecc_fail = false;
        for (k, w) in raw.into_iter().enumerate() {
            match w {
                Some(mw) => line[k] = mw,
                None => ecc_fail = true,
            }
        }
        if ecc_fail {
            self.raise(now, MemEventKind::EccError, req);
            let err = GuardedPointer::new(Perm::ErrVal, 0, req.va & ((1 << 54) - 1))
                .map(Word::from_pointer)
                .unwrap_or(Word::ZERO);
            self.respond(req, err, first + 1);
            return;
        }

        let word_in_line = (req.va % LINE_WORDS) as usize;
        let fetched = line[word_in_line];

        // Sync precondition applies to the word as read from memory.
        if !Self::pre_ok(req.pre, fetched.sync) {
            self.raise(
                now,
                MemEventKind::SyncFault {
                    sync_was: fetched.sync,
                },
                req,
            );
            return;
        }

        let writable = status.writable();
        if let Some(victim) = self.cache.fill(va_line, pa_line, line, writable) {
            // Write the dirty victim back after the fill burst.
            self.sdram.write(last, victim.pa, &victim.data);
        }

        match req.kind {
            AccessKind::Load => {
                if req.post != SyncPost::Unchanged {
                    // The permission check above required a writable
                    // block, and the line was just filled with that flag
                    // — the postcondition cannot be dropped here.
                    let outcome = self
                        .cache
                        .set_sync(req.va, Self::post_sync(req.post, fetched.sync));
                    assert_eq!(
                        outcome,
                        StoreOutcome::Written,
                        "sync postcondition lost on miss fill at va {:#x}",
                        req.va
                    );
                }
                // Critical-word-first: the register is written one cycle
                // after the first burst word arrives.
                self.respond(req, fetched.word, first + 1);
            }
            AccessKind::Store => {
                let new = MemWord::with_sync(
                    Word::from_raw(req.data.bits(), req.data_ptr_tag),
                    Self::post_sync(req.post, fetched.sync),
                );
                let _ = self.cache.write(req.va, new);
                self.mark_dirty(req.va);
                // "A write is completed when the line containing the data
                // has been fully loaded into the cache" (Table 1).
                self.respond(req, req.data, last);
            }
        }
    }

    /// Record a write in the page's block-status bits (READ/WRITE → DIRTY,
    /// §4.3: "modifications to the data will automatically mark the block
    /// state dirty").
    fn mark_dirty(&mut self, va: u64) {
        let vpn = va / PAGE_WORDS;
        let block = (va % PAGE_WORDS) / crate::ltlb::BLOCK_WORDS;
        if let Some(e) = self.ltlb.find_mut(vpn) {
            if e.block_status(block) == BlockStatus::ReadWrite {
                e.set_block_status(block, BlockStatus::Dirty);
            }
        }
    }

    // ------------------------------------------------------------------
    // Privileged / firmware interfaces
    // ------------------------------------------------------------------

    /// Install the LPT entry at physical address `lpt_slot_addr` into the
    /// LTLB (the `tlbwr` operation). Evicted entries are written back to
    /// the LPT. Returns `false` if the slot does not hold a valid entry.
    pub fn tlb_install(&mut self, lpt_slot_addr: u64) -> bool {
        let Some(lpt) = self.lpt else { return false };
        let Some(entry) = lpt.read_entry(&self.sdram, lpt_slot_addr) else {
            return false;
        };
        if let Some(evicted) = self.ltlb.insert(entry) {
            lpt.write_back(&mut self.sdram, &evicted);
        }
        true
    }

    /// Drop the LTLB entry for `vpn`, writing its status bits back to the
    /// LPT (used when coherence changes a page's block states).
    pub fn tlb_invalidate(&mut self, vpn: u64) {
        if let Some(entry) = self.ltlb.invalidate(vpn) {
            if let Some(lpt) = self.lpt {
                lpt.write_back(&mut self.sdram, &entry);
            }
        }
    }

    /// Direct LTLB probe (no stats).
    #[must_use]
    pub fn ltlb_probe(&self, vpn: u64) -> Option<&LtlbEntry> {
        self.ltlb.probe(vpn)
    }

    /// Mutable LTLB access for firmware coherence handlers.
    pub fn ltlb_entry_mut(&mut self, vpn: u64) -> Option<&mut LtlbEntry> {
        self.ltlb.find_mut(vpn)
    }

    /// Translate a virtual address using LTLB, then LPT. `None` if unmapped.
    #[must_use]
    pub fn translate(&self, va: u64) -> Option<u64> {
        let vpn = va / PAGE_WORDS;
        let offset = va % PAGE_WORDS;
        if let Some(e) = self.ltlb.probe(vpn) {
            return Some(e.translate(offset));
        }
        let lpt = self.lpt?;
        lpt.lookup(&self.sdram, vpn).map(|e| e.translate(offset))
    }

    /// Zero-time virtual read for loaders/firmware: cache first, then
    /// translated DRAM.
    #[must_use]
    pub fn peek_va(&self, va: u64) -> Option<MemWord> {
        if let Some(w) = self.cache.peek(va) {
            return Some(w);
        }
        self.translate(va).map(|pa| self.sdram.peek(pa))
    }

    /// Zero-time virtual write for loaders/firmware: updates the cached
    /// copy if present, else translated DRAM.
    pub fn poke_va(&mut self, va: u64, w: MemWord) -> bool {
        if self.cache.poke(va, w) {
            return true;
        }
        match self.translate(va) {
            Some(pa) => {
                self.sdram.poke(pa, w);
                true
            }
            None => false,
        }
    }

    /// Invalidate the cache line holding `va`, writing dirty data back to
    /// DRAM (coherence firmware; zero-time, the handler charges cycles).
    pub fn flush_block(&mut self, va: u64) {
        if let Some(victim) = self.cache.invalidate(va) {
            for (i, w) in victim.data.iter().enumerate() {
                self.sdram.poke(victim.pa + i as u64, *w);
            }
        }
    }

    /// Downgrade the cache line holding `va` to read-only, writing dirty
    /// data back (coherence firmware).
    pub fn downgrade_block(&mut self, va: u64) {
        if let Some(victim) = self.cache.downgrade(va) {
            for (i, w) in victim.data.iter().enumerate() {
                self.sdram.poke(victim.pa + i as u64, *w);
            }
        }
    }

    /// Direct physical read (zero-time).
    #[must_use]
    pub fn peek_phys(&self, pa: u64) -> MemWord {
        self.sdram.peek(pa)
    }

    /// Direct physical write (zero-time).
    pub fn poke_phys(&mut self, pa: u64, w: MemWord) {
        self.sdram.poke(pa, w);
    }

    /// Mutable SDRAM handle (boot-time table construction).
    pub fn sdram_mut(&mut self) -> &mut Sdram {
        &mut self.sdram
    }

    /// Shared SDRAM handle.
    #[must_use]
    pub fn sdram(&self) -> &Sdram {
        &self.sdram
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serialize the complete memory-system state (array contents, cache
    /// lines, LTLB, in-flight queues, stats). The configuration is *not*
    /// serialized: restore targets an identically-configured system.
    pub fn save_state(&self, e: &mut Enc) {
        self.sdram.save_state(e);
        self.cache.save_state(e);
        self.ltlb.save_state(e);
        match self.lpt {
            Some(lpt) => {
                e.u8(1);
                e.u64(lpt.base);
                e.u64(lpt.slots);
            }
            None => e.u8(0),
        }
        e.usize(self.bank_q.len());
        for q in &self.bank_q {
            e.usize(q.len());
            for req in q {
                encode_req(e, req);
            }
        }
        e.usize(self.miss_q.len());
        for &(ready, req) in &self.miss_q {
            e.u64(ready);
            encode_req(e, &req);
        }
        let staged = self.responses.snapshot();
        e.usize(staged.len());
        for (ready, resp) in staged {
            e.u64(ready);
            encode_req(e, &resp.req);
            e.u64(resp.value.bits());
            e.bool(resp.value.is_pointer());
            e.u64(resp.ready);
        }
        e.usize(self.events.len());
        for ev in &self.events {
            e.u64(ev.at);
            match ev.kind {
                MemEventKind::LtlbMiss => e.u8(0),
                MemEventKind::BlockStatusFault { status } => {
                    e.u8(1);
                    e.u8(status.bits());
                }
                MemEventKind::SyncFault { sync_was } => {
                    e.u8(2);
                    e.bool(sync_was);
                }
                MemEventKind::EccError => e.u8(3),
            }
            encode_req(e, &ev.req);
        }
        e.u64(self.stats.requests);
        e.u64(self.stats.responses);
        e.u64(self.stats.ltlb_miss_events);
        e.u64(self.stats.block_status_events);
        e.u64(self.stats.sync_fault_events);
        e.u64(self.stats.ecc_events);
        e.u64(self.stats.bank_stalls);
    }

    /// Restore state produced by [`MemorySystem::save_state`] into a
    /// system built with the same configuration.
    ///
    /// # Errors
    ///
    /// Fails on truncation, malformed fields, or a geometry mismatch in
    /// any component.
    pub fn load_state(&mut self, d: &mut Dec) -> Result<(), CkptError> {
        self.sdram.load_state(d)?;
        self.cache.load_state(d)?;
        self.ltlb.load_state(d)?;
        self.lpt = match d.u8()? {
            0 => None,
            1 => {
                let base = d.u64()?;
                let slots = d.u64()?;
                if !slots.is_power_of_two() {
                    return Err(CkptError(format!("bad LPT slot count {slots}")));
                }
                Some(Lpt { base, slots })
            }
            t => return Err(CkptError(format!("bad LPT presence tag {t}"))),
        };
        let banks = d.usize()?;
        if banks != self.bank_q.len() {
            return Err(CkptError(format!(
                "bank count mismatch: checkpoint {banks}, configured {}",
                self.bank_q.len()
            )));
        }
        self.bank_backlog = 0;
        for q in &mut self.bank_q {
            q.clear();
            let n = d.usize()?;
            for _ in 0..n {
                q.push_back(decode_req(d)?);
            }
            self.bank_backlog += n;
        }
        self.miss_q.clear();
        let n = d.usize()?;
        for _ in 0..n {
            let ready = d.u64()?;
            let req = decode_req(d)?;
            self.miss_q.push_back((ready, req));
        }
        let n = d.usize()?;
        let mut staged = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let key = d.u64()?;
            let req = decode_req(d)?;
            let value = Word::from_raw(d.u64()?, d.bool()?);
            let ready = d.u64()?;
            staged.push((key, MemResponse { req, value, ready }));
        }
        self.responses.restore(staged);
        self.events.clear();
        let n = d.usize()?;
        for _ in 0..n {
            let at = d.u64()?;
            let kind = match d.u8()? {
                0 => MemEventKind::LtlbMiss,
                1 => MemEventKind::BlockStatusFault {
                    status: BlockStatus::from_bits(d.u8()?),
                },
                2 => MemEventKind::SyncFault {
                    sync_was: d.bool()?,
                },
                3 => MemEventKind::EccError,
                t => return Err(CkptError(format!("bad mem event tag {t}"))),
            };
            let req = decode_req(d)?;
            self.events.push(MemEvent { at, kind, req });
        }
        self.stats = MemStats {
            requests: d.u64()?,
            responses: d.u64()?,
            ltlb_miss_events: d.u64()?,
            block_status_events: d.u64()?,
            sync_fault_events: d.u64()?,
            ecc_events: d.u64()?,
            bank_stalls: d.u64()?,
        };
        Ok(())
    }
}

fn encode_req(e: &mut Enc, req: &MemRequest) {
    e.u64(req.id);
    e.u8(match req.kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
    });
    e.u64(req.va);
    e.u64(req.data.bits());
    e.bool(req.data.is_pointer());
    e.bool(req.data_ptr_tag);
    e.u8(match req.pre {
        SyncPre::Any => 0,
        SyncPre::Full => 1,
        SyncPre::Empty => 2,
    });
    e.u8(match req.post {
        SyncPost::Unchanged => 0,
        SyncPost::SetFull => 1,
        SyncPost::SetEmpty => 2,
    });
    e.u64(req.tag);
    e.bool(req.phys);
}

fn decode_req(d: &mut Dec) -> Result<MemRequest, CkptError> {
    let id = d.u64()?;
    let kind = match d.u8()? {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        t => return Err(CkptError(format!("bad access kind {t}"))),
    };
    let va = d.u64()?;
    let data = Word::from_raw(d.u64()?, d.bool()?);
    let data_ptr_tag = d.bool()?;
    let pre = match d.u8()? {
        0 => SyncPre::Any,
        1 => SyncPre::Full,
        2 => SyncPre::Empty,
        t => return Err(CkptError(format!("bad sync precondition {t}"))),
    };
    let post = match d.u8()? {
        0 => SyncPost::Unchanged,
        1 => SyncPost::SetFull,
        2 => SyncPost::SetEmpty,
        t => return Err(CkptError(format!("bad sync postcondition {t}"))),
    };
    let tag = d.u64()?;
    let phys = d.bool()?;
    Ok(MemRequest {
        id,
        kind,
        va,
        data,
        data_ptr_tag,
        pre,
        post,
        tag,
        phys,
    })
}
