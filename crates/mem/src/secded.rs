//! (72,64) SECDED error control for the SDRAM controller.
//!
//! The MAP's external memory interface "performs SECDED error control"
//! (§2): single-error-correcting, double-error-detecting. This module
//! implements the classic Hsiao-style extended Hamming code over 64 data
//! bits with 8 check bits, plus a fault-injection API used by the tests
//! and the reliability ablation bench.

/// Number of data bits protected.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;

/// Outcome of decoding a (data, check) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected; payload is the stored data.
    Clean(u64),
    /// A single-bit error was corrected; payload is the corrected data and
    /// the flipped code-word position.
    Corrected {
        /// The repaired data word.
        data: u64,
        /// Code-word bit position that was flipped (1-based Hamming
        /// position; positions that are powers of two are check bits).
        position: u32,
    },
    /// An uncorrectable (double-bit) error was detected.
    DoubleError,
}

impl Decoded {
    /// The data word, if the read was usable.
    #[must_use]
    pub fn data(self) -> Option<u64> {
        match self {
            Decoded::Clean(d) | Decoded::Corrected { data: d, .. } => Some(d),
            Decoded::DoubleError => None,
        }
    }
}

/// Hamming position (1-based) of data bit `i` — skipping power-of-two
/// positions, which hold check bits.
const fn data_position(i: u32) -> u32 {
    // Positions 1,2,4,8,... are check bits; data fills the rest in order.
    let mut pos: u32 = 0;
    let mut remaining = i + 1;
    while remaining > 0 {
        pos += 1;
        if !pos.is_power_of_two() {
            remaining -= 1;
        }
    }
    pos
}

/// Precomputed positions for the 64 data bits.
const POSITIONS: [u32; 64] = {
    let mut p = [0u32; 64];
    let mut i = 0;
    while i < 64 {
        p[i as usize] = data_position(i);
        i += 1;
    }
    p
};

/// `MASKS[k]`: the data bits whose Hamming position has bit `k` set.
/// The syndrome "XOR of the positions of set data bits" is then, per
/// syndrome bit, the parity of `data & MASKS[k]` — 7 mask-and-popcount
/// steps instead of a 64-iteration position scan. (Positions reach 72,
/// so 7 bits cover them.)
const MASKS: [u64; 7] = {
    let mut m = [0u64; 7];
    let mut i = 0;
    while i < 64 {
        let mut k = 0;
        while k < 7 {
            if (POSITIONS[i] >> k) & 1 == 1 {
                m[k] |= 1u64 << i;
            }
            k += 1;
        }
        i += 1;
    }
    m
};

/// Data-bit index for each Hamming position (255 = a check bit or out of
/// range) — the correction path's reverse lookup.
const POS_TO_DATA: [u8; 128] = {
    let mut t = [255u8; 128];
    let mut i = 0;
    while i < 64 {
        t[POSITIONS[i] as usize] = i as u8;
        i += 1;
    }
    t
};

/// XOR of the Hamming positions of `data`'s set bits, one parity per
/// syndrome bit.
#[inline]
fn hamming_syndrome(data: u64) -> u32 {
    let mut s: u32 = 0;
    let mut k = 0;
    while k < 7 {
        s |= ((data & MASKS[k]).count_ones() & 1) << k;
        k += 1;
    }
    s
}

/// Compute the 8 check bits for a data word.
#[must_use]
pub fn encode(data: u64) -> u8 {
    #[allow(clippy::cast_possible_truncation)]
    let check = hamming_syndrome(data) as u8;
    // Overall parity (bit 7) over data + 7 check bits for double detection.
    let parity = (data.count_ones() + u32::from(check & 0x7F).count_ones()) & 1;
    #[allow(clippy::cast_possible_truncation)]
    {
        check | ((parity as u8) << 7)
    }
}

/// Decode a (data, check) pair, correcting single-bit errors.
#[must_use]
pub fn decode(data: u64, check: u8) -> Decoded {
    // Hamming syndrome over the *received* word: XOR of the positions of
    // set data bits, compared against the received check bits.
    let hamming = hamming_syndrome(data);
    let received_check = u32::from(check & 0x7F);
    let syndrome = hamming ^ received_check;

    // Overall parity of the received code word (data + 7 check bits +
    // parity bit). Zero when clean or after an even number of flips.
    let total_parity = (data.count_ones() + u32::from(check).count_ones()) & 1;
    let parity_err = total_parity == 1;

    if syndrome == 0 && !parity_err {
        return Decoded::Clean(data);
    }
    if syndrome != 0 && !parity_err {
        // Even number of flips with a non-zero syndrome: uncorrectable.
        return Decoded::DoubleError;
    }
    if syndrome == 0 && parity_err {
        // The overall parity bit itself flipped; data is intact.
        return Decoded::Corrected {
            data,
            position: 128,
        };
    }
    // Single error at Hamming position `syndrome`.
    if syndrome.is_power_of_two() {
        // A check bit flipped; data is intact.
        return Decoded::Corrected {
            data,
            position: syndrome,
        };
    }
    // A data bit flipped: find which data index has this position.
    let i = POS_TO_DATA[(syndrome & 127) as usize];
    if i != 255 {
        return Decoded::Corrected {
            data: data ^ (1u64 << i),
            position: syndrome,
        };
    }
    Decoded::DoubleError
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_round_trip() {
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1 << 63] {
            let c = encode(data);
            assert_eq!(decode(data, c), Decoded::Clean(data));
        }
    }

    #[test]
    fn corrects_every_single_data_bit_flip() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = encode(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            match decode(corrupted, check) {
                Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrects_check_bit_flips() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let check = encode(data);
        for bit in 0..8 {
            let bad_check = check ^ (1u8 << bit);
            match decode(data, bad_check) {
                Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
                other => panic!("check bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_double_data_flips() {
        let data = 0x1111_2222_3333_4444u64;
        let check = encode(data);
        for (a, b) in [(0u32, 1u32), (5, 40), (62, 63), (10, 11), (0, 63)] {
            let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(
                decode(corrupted, check),
                Decoded::DoubleError,
                "bits {a},{b}"
            );
        }
    }

    #[test]
    fn decoded_data_accessor() {
        assert_eq!(Decoded::Clean(5).data(), Some(5));
        assert_eq!(Decoded::DoubleError.data(), None);
    }
}
