//! The on-chip cache: four word-interleaved, virtually-addressed banks.
//!
//! "The on-chip cache is organized as four word-interleaved 4KW (32KB)
//! banks to permit four consecutive word accesses to proceed in parallel.
//! The cache is virtually addressed and tagged. The cache banks are
//! pipelined with a three-cycle read latency, including switch traversal"
//! (§2). Lines are 8 words — the same granularity as the block-status
//! bits — so coherence invalidations map one block to one line.
//!
//! Consecutive words live in different banks (`bank = va mod 4`); a line
//! spans all four banks, two words in each. Tag and state are kept once
//! per line. Each line carries a `writable` bit derived from the page's
//! block-status bits at fill time, so stores to locally-cached READ-ONLY
//! remote data fault even on a cache hit.

use crate::dram::MemWord;
use mm_faults::{CkptError, Dec, Enc};

/// Words per cache line (= words per block-status block).
pub const LINE_WORDS: u64 = 8;

/// Cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of banks (fixed at 4 on the MAP; configurable for ablations).
    pub banks: u64,
    /// Words per bank (4 KW on the MAP).
    pub words_per_bank: u64,
}

impl CacheConfig {
    /// Total lines in the cache.
    #[must_use]
    pub fn num_lines(&self) -> u64 {
        self.banks * self.words_per_bank / LINE_WORDS
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            banks: 4,
            words_per_bank: 4096,
        }
    }
}

/// One direct-mapped cache line.
#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    writable: bool,
    /// Physical address of the line base, captured at fill time so dirty
    /// victims can be written back without re-translating (the cache is
    /// virtually tagged; the victim's LTLB entry may be gone).
    pa_base: u64,
    /// Line contents, inline: the per-access data path costs one cache
    /// array index, not an extra heap hop per line.
    data: [MemWord; LINE_WORDS as usize],
}

impl Line {
    fn empty() -> Line {
        Line {
            valid: false,
            tag: 0,
            dirty: false,
            writable: false,
            pa_base: 0,
            data: [MemWord::default(); LINE_WORDS as usize],
        }
    }
}

/// Result of attempting a store hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The word was written (line now dirty).
    Written,
    /// The line is present but not writable (block-status fault).
    NotWritable,
    /// The line is not present.
    Miss,
}

/// A dirty line evicted by a fill, to be written back to DRAM.
#[derive(Debug, Clone)]
pub struct Victim {
    /// Virtual address of the first word of the victim line.
    pub va: u64,
    /// Physical address of the first word of the victim line.
    pub pa: u64,
    /// The eight words of the line.
    pub data: [MemWord; LINE_WORDS as usize],
}

/// Counters for the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

/// The four-bank, direct-mapped, virtually-tagged cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero lines or a non-power-of-two line
    /// count.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        let n = cfg.num_lines();
        assert!(
            n > 0 && n.is_power_of_two(),
            "line count must be a power of two"
        );
        Cache {
            lines: (0..n).map(|_| Line::empty()).collect(),
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The geometry in use.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The bank serving virtual address `va` (word-interleaved).
    #[must_use]
    pub fn bank_of(&self, va: u64) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        {
            (va % self.cfg.banks) as usize
        }
    }

    fn index_of(&self, va: u64) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        {
            ((va / LINE_WORDS) % self.cfg.num_lines()) as usize
        }
    }

    fn tag_of(&self, va: u64) -> u64 {
        va / LINE_WORDS / self.cfg.num_lines()
    }

    fn line_base(&self, va: u64) -> u64 {
        va & !(LINE_WORDS - 1)
    }

    /// Is the word at `va` present?
    #[must_use]
    pub fn contains(&self, va: u64) -> bool {
        let line = &self.lines[self.index_of(va)];
        line.valid && line.tag == self.tag_of(va)
    }

    /// Read a word on a hit. Counts a read hit or miss.
    pub fn read(&mut self, va: u64) -> Option<MemWord> {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let line = &self.lines[idx];
        if line.valid && line.tag == tag {
            self.stats.read_hits += 1;
            Some(line.data[(va % LINE_WORDS) as usize])
        } else {
            self.stats.read_misses += 1;
            None
        }
    }

    /// Write a word on a hit. Counts a write hit or miss.
    pub fn write(&mut self, va: u64, w: MemWord) -> StoreOutcome {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            if !line.writable {
                return StoreOutcome::NotWritable;
            }
            self.stats.write_hits += 1;
            line.data[(va % LINE_WORDS) as usize] = w;
            line.dirty = true;
            StoreOutcome::Written
        } else {
            self.stats.write_misses += 1;
            StoreOutcome::Miss
        }
    }

    /// Update only the synchronization bit of a resident word (used by
    /// synchronizing loads; requires a writable line, like any mutation).
    pub fn set_sync(&mut self, va: u64, sync: bool) -> StoreOutcome {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            if !line.writable {
                return StoreOutcome::NotWritable;
            }
            line.data[(va % LINE_WORDS) as usize].sync = sync;
            line.dirty = true;
            StoreOutcome::Written
        } else {
            StoreOutcome::Miss
        }
    }

    /// Install the line containing `va`, whose physical base is `pa_base`.
    /// Returns the evicted dirty line, if any, for write-back.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`LINE_WORDS`] long.
    pub fn fill(
        &mut self,
        va: u64,
        pa_base: u64,
        data: [MemWord; LINE_WORDS as usize],
        writable: bool,
    ) -> Option<Victim> {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let num_lines = self.cfg.num_lines();
        let line = &mut self.lines[idx];
        let victim = if line.valid && line.dirty {
            self.stats.writebacks += 1;
            let victim_va = (line.tag * num_lines + idx as u64) * LINE_WORDS;
            Some(Victim {
                va: victim_va,
                pa: line.pa_base,
                data: line.data,
            })
        } else {
            None
        };
        *line = Line {
            valid: true,
            tag,
            dirty: false,
            writable,
            pa_base: pa_base & !(LINE_WORDS - 1),
            data,
        };
        victim
    }

    /// Read a resident word without touching statistics (backdoor for
    /// loaders, sync-precondition checks and firmware).
    #[must_use]
    pub fn peek(&self, va: u64) -> Option<MemWord> {
        let line = &self.lines[self.index_of(va)];
        if line.valid && line.tag == self.tag_of(va) {
            Some(line.data[(va % LINE_WORDS) as usize])
        } else {
            None
        }
    }

    /// Overwrite a resident word without touching statistics or the
    /// writable bit (backdoor for loaders and firmware).
    pub fn poke(&mut self, va: u64, w: MemWord) -> bool {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            line.data[(va % LINE_WORDS) as usize] = w;
            line.dirty = true;
            true
        } else {
            false
        }
    }

    /// Invalidate the line containing `va` (coherence). Returns the line's
    /// contents if it was dirty, so the caller can write it back.
    pub fn invalidate(&mut self, va: u64) -> Option<Victim> {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let base = self.line_base(va);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            let dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            if dirty {
                self.stats.writebacks += 1;
                return Some(Victim {
                    va: base,
                    pa: line.pa_base,
                    data: std::mem::take(&mut line.data),
                });
            }
        }
        None
    }

    /// Serialize every valid line plus the statistics into a checkpoint
    /// stream (invalid lines are skipped; restore re-empties them).
    pub fn save_state(&self, e: &mut Enc) {
        e.u64(self.cfg.num_lines());
        let valid = self.lines.iter().filter(|l| l.valid).count();
        e.usize(valid);
        for (idx, l) in self.lines.iter().enumerate().filter(|(_, l)| l.valid) {
            e.usize(idx);
            e.u64(l.tag);
            e.bool(l.dirty);
            e.bool(l.writable);
            e.u64(l.pa_base);
            for w in &l.data {
                e.u64(w.word.bits());
                e.bool(w.word.is_pointer());
                e.bool(w.sync);
                e.u8(w.ecc);
            }
        }
        let s = &self.stats;
        for v in [
            s.read_hits,
            s.read_misses,
            s.write_hits,
            s.write_misses,
            s.writebacks,
        ] {
            e.u64(v);
        }
    }

    /// Restore state saved by [`Cache::save_state`].
    ///
    /// # Errors
    ///
    /// [`CkptError`] on truncated input or a geometry mismatch.
    pub fn load_state(&mut self, d: &mut Dec<'_>) -> Result<(), CkptError> {
        let n = d.u64()?;
        if n != self.cfg.num_lines() {
            return Err(CkptError(format!(
                "cache line-count mismatch: checkpoint has {n}, cache has {}",
                self.cfg.num_lines()
            )));
        }
        for l in &mut self.lines {
            *l = Line::empty();
        }
        for _ in 0..d.usize()? {
            let idx = d.usize()?;
            if idx >= self.lines.len() {
                return Err(CkptError(format!("cache line index {idx} out of range")));
            }
            let tag = d.u64()?;
            let dirty = d.bool()?;
            let writable = d.bool()?;
            let pa_base = d.u64()?;
            let mut data = [MemWord::default(); LINE_WORDS as usize];
            for w in &mut data {
                let bits = d.u64()?;
                let ptr = d.bool()?;
                let sync = d.bool()?;
                let ecc = d.u8()?;
                *w = MemWord {
                    word: mm_isa::word::Word::from_raw(bits, ptr),
                    sync,
                    ecc,
                };
            }
            self.lines[idx] = Line {
                valid: true,
                tag,
                dirty,
                writable,
                pa_base,
                data,
            };
        }
        self.stats = CacheStats {
            read_hits: d.u64()?,
            read_misses: d.u64()?,
            write_hits: d.u64()?,
            write_misses: d.u64()?,
            writebacks: d.u64()?,
        };
        Ok(())
    }

    /// Downgrade the line containing `va` to read-only (coherence), if
    /// present. Returns its contents if it was dirty (for write-back).
    pub fn downgrade(&mut self, va: u64) -> Option<Victim> {
        let idx = self.index_of(va);
        let tag = self.tag_of(va);
        let base = self.line_base(va);
        let line = &mut self.lines[idx];
        if line.valid && line.tag == tag {
            line.writable = false;
            if line.dirty {
                line.dirty = false;
                self.stats.writebacks += 1;
                return Some(Victim {
                    va: base,
                    pa: line.pa_base,
                    data: line.data,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_isa::word::Word;

    fn mk(v: u64) -> MemWord {
        MemWord::new(Word::from_u64(v))
    }

    fn line(vals: std::ops::Range<u64>) -> [MemWord; LINE_WORDS as usize] {
        let v: Vec<MemWord> = vals.map(mk).collect();
        v.try_into().expect("test lines are LINE_WORDS long")
    }

    fn cache() -> Cache {
        Cache::new(CacheConfig {
            banks: 4,
            words_per_bank: 64, // 256 words, 32 lines — small for tests
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache();
        assert_eq!(c.read(8), None);
        assert!(c.fill(8, 8, line(0..8), true).is_none());
        assert_eq!(c.read(9).unwrap().word.bits(), 1);
        assert!(c.contains(15));
        assert!(!c.contains(16));
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn bank_interleaving() {
        let c = cache();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(1), 1);
        assert_eq!(c.bank_of(5), 1);
        assert_eq!(c.bank_of(7), 3);
    }

    #[test]
    fn write_hit_marks_dirty_and_evicts() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        assert_eq!(c.write(3, mk(99)), StoreOutcome::Written);
        assert_eq!(c.read(3).unwrap().word.bits(), 99);
        //

        // Fill a conflicting line: 32 lines * 8 words = 256-word stride.
        let victim = c
            .fill(256, 256, line(100..108), true)
            .expect("dirty victim");
        assert_eq!(victim.va, 0);
        assert_eq!(victim.data[3].word.bits(), 99);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_returns_no_victim() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        assert!(c.fill(256, 256, line(0..8), true).is_none());
    }

    #[test]
    fn read_only_line_rejects_stores() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), false);
        assert_eq!(c.write(0, mk(1)), StoreOutcome::NotWritable);
        assert_eq!(c.set_sync(0, true), StoreOutcome::NotWritable);
        // Reads still fine.
        assert!(c.read(0).is_some());
    }

    #[test]
    fn store_miss_reported() {
        let mut c = cache();
        assert_eq!(c.write(40, mk(1)), StoreOutcome::Miss);
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn sync_bit_update() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        assert_eq!(c.set_sync(2, true), StoreOutcome::Written);
        assert!(c.read(2).unwrap().sync);
    }

    #[test]
    fn invalidate_returns_dirty_contents() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        c.write(1, mk(55));
        let v = c.invalidate(0).expect("dirty line returned");
        assert_eq!(v.va, 0);
        assert_eq!(v.data[1].word.bits(), 55);
        assert!(!c.contains(0));
        // Invalidating again is a no-op.
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn invalidate_clean_line_silent() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        assert!(c.invalidate(0).is_none());
        assert!(!c.contains(0));
    }

    #[test]
    fn downgrade_blocks_later_stores() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        c.write(1, mk(5));
        let v = c.downgrade(0).expect("was dirty");
        assert_eq!(v.data[1].word.bits(), 5);
        assert_eq!(c.write(1, mk(6)), StoreOutcome::NotWritable);
        assert!(c.contains(0));
    }

    /// A cache with valid, dirty and read-only lines round-trips through
    /// the checkpoint codec.
    #[test]
    fn cache_state_round_trips() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        c.write(3, mk(99));
        c.fill(8, 8, line(8..16), false);
        let mut e = Enc::new();
        c.save_state(&mut e);
        let bytes = e.finish();
        let mut r = cache();
        let mut d = Dec::new(&bytes);
        r.load_state(&mut d).expect("load");
        assert_eq!(d.remaining(), 0);
        assert_eq!(r.stats(), c.stats());
        assert_eq!(r.peek(3).unwrap().word.bits(), 99);
        assert_eq!(r.write(8, mk(1)), StoreOutcome::NotWritable);
        // The restored dirty bit still produces a victim on conflict.
        assert!(r.fill(256, 256, line(0..8), true).is_some());
        // A different geometry refuses the checkpoint.
        let mut other = Cache::new(CacheConfig {
            banks: 4,
            words_per_bank: 32,
        });
        assert!(other.load_state(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn distinct_tags_conflict_correctly() {
        let mut c = cache();
        c.fill(0, 0, line(0..8), true);
        c.fill(256, 256, line(8..16), true); // same index, different tag
        assert!(!c.contains(0));
        assert!(c.contains(256));
        assert_eq!(c.read(256).unwrap().word.bits(), 8);
    }
}
