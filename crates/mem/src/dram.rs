//! The node's external SDRAM with page-mode timing and SECDED.
//!
//! Each M-Machine node carries 1 MW (8 MB) of synchronous DRAM; the MAP's
//! memory interface "exploits the pipeline and page mode of the external
//! memory and performs SECDED error control" (§2). This model keeps an
//! open row per internal bank: accesses to the open row pay the short CAS
//! latency, others pay a precharge+activate penalty, and bursts then
//! stream one word per cycle.

use crate::secded::{decode, encode, Decoded};
use mm_faults::{CkptError, Dec, Enc};
use mm_isa::word::Word;

/// One word of storage: data bits + pointer tag + synchronization bit +
/// the 8 SECDED check bits.
///
/// The synchronization bit is the per-memory-word full/empty bit of §2;
/// it travels with the word through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemWord {
    /// The tagged data word.
    pub word: Word,
    /// Full/empty synchronization bit.
    pub sync: bool,
    /// SECDED check bits over the data bits.
    pub ecc: u8,
}

impl MemWord {
    /// A word with freshly computed check bits and an empty sync bit.
    #[must_use]
    pub fn new(word: Word) -> MemWord {
        MemWord {
            word,
            sync: false,
            ecc: encode(word.bits()),
        }
    }

    /// A word with the sync bit preset.
    #[must_use]
    pub fn with_sync(word: Word, sync: bool) -> MemWord {
        MemWord {
            word,
            sync,
            ecc: encode(word.bits()),
        }
    }
}

/// SDRAM timing and geometry configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdramConfig {
    /// Total capacity in words (the paper's node: 1 MW = 8 MB).
    pub capacity_words: u64,
    /// Internal banks, each with one open row.
    pub banks: u64,
    /// Words per row ("page" in DRAM terms).
    pub row_words: u64,
    /// Cycles from request to first word when the row is already open.
    pub first_word_row_hit: u64,
    /// Additional cycles when the row must be precharged + activated.
    pub row_miss_penalty: u64,
    /// Cycles per additional word in a burst.
    pub burst_per_word: u64,
    /// When `false`, every access pays the row-miss penalty (page-mode
    /// disabled — used by the ablation bench).
    pub page_mode: bool,
}

impl Default for SdramConfig {
    fn default() -> SdramConfig {
        SdramConfig {
            capacity_words: 1 << 20,
            banks: 4,
            row_words: 1024,
            // Tuned so a local cache-miss read completes in the paper's 13
            // cycles: 2 (detect) + 1 (translate) + 9 (first word) + 1
            // (register write) = 13; the full 8-word line lands at 19,
            // matching the paper's 19-cycle local miss write.
            first_word_row_hit: 9,
            row_miss_penalty: 6,
            burst_per_word: 1,
            page_mode: true,
        }
    }
}

/// Counters the benches report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdramStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required precharge + activate.
    pub row_misses: u64,
    /// Total words transferred.
    pub words_transferred: u64,
    /// Single-bit errors corrected by SECDED.
    pub ecc_corrected: u64,
    /// Uncorrectable double-bit errors observed.
    pub ecc_double_errors: u64,
}

/// The SDRAM array plus its controller state.
#[derive(Debug, Clone)]
pub struct Sdram {
    cfg: SdramConfig,
    words: Vec<MemWord>,
    open_rows: Vec<Option<u64>>,
    busy_until: u64,
    stats: SdramStats,
}

impl Sdram {
    /// Build an SDRAM of the configured capacity, zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_words` is zero.
    #[must_use]
    pub fn new(cfg: SdramConfig) -> Sdram {
        assert!(
            cfg.banks > 0 && cfg.row_words > 0,
            "degenerate SDRAM geometry"
        );
        let words = vec![MemWord::new(Word::ZERO); cfg.capacity_words as usize];
        let open_rows = vec![None; cfg.banks as usize];
        Sdram {
            cfg,
            words,
            open_rows,
            busy_until: 0,
            stats: SdramStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SdramConfig {
        &self.cfg
    }

    /// Capacity in words.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity_words
    }

    /// Access statistics so far.
    #[must_use]
    pub fn stats(&self) -> SdramStats {
        self.stats
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_index = addr / self.cfg.row_words;
        #[allow(clippy::cast_possible_truncation)]
        let bank = (row_index % self.cfg.banks) as usize;
        (bank, row_index / self.cfg.banks)
    }

    /// Model the timing of an access starting no earlier than `now`;
    /// returns the cycle at which the first word is available and advances
    /// the controller's busy window past the whole burst.
    fn access_timing(&mut self, now: u64, addr: u64, len: u64) -> u64 {
        let start = now.max(self.busy_until);
        let (bank, row) = self.bank_and_row(addr);
        let hit = self.cfg.page_mode && self.open_rows[bank] == Some(row);
        let first = if hit {
            self.stats.row_hits += 1;
            start + self.cfg.first_word_row_hit
        } else {
            self.stats.row_misses += 1;
            start + self.cfg.first_word_row_hit + self.cfg.row_miss_penalty
        };
        self.open_rows[bank] = Some(row);
        let done = first + self.cfg.burst_per_word * len.saturating_sub(1);
        self.busy_until = done;
        self.stats.words_transferred += len;
        first
    }

    /// Read `len` words starting at `addr`, beginning no earlier than
    /// cycle `now`. Returns `(first_word_cycle, last_word_cycle, words)`;
    /// single-bit upsets are corrected transparently, double errors
    /// surface as `None` entries.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the capacity.
    pub fn read(&mut self, now: u64, addr: u64, len: u64) -> (u64, u64, Vec<Option<MemWord>>) {
        let mut out = vec![None; len as usize];
        let (first, last) = self.read_into(now, addr, &mut out);
        (first, last, out)
    }

    /// Read `out.len()` words starting at `addr` into a caller-owned
    /// buffer — the allocation-free form of [`Sdram::read`] the line-fill
    /// path uses (one stack array per fill instead of a heap `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the capacity.
    pub fn read_into(&mut self, now: u64, addr: u64, out: &mut [Option<MemWord>]) -> (u64, u64) {
        let len = out.len() as u64;
        assert!(
            addr + len <= self.cfg.capacity_words,
            "SDRAM read out of range: {addr:#x}+{len}"
        );
        let first = self.access_timing(now, addr, len);
        let last = first + self.cfg.burst_per_word * len.saturating_sub(1);
        for (i, slot) in out.iter_mut().enumerate() {
            let cell = self.words[addr as usize + i];
            *slot = match decode(cell.word.bits(), cell.ecc) {
                Decoded::Clean(_) => Some(cell),
                Decoded::Corrected { data, .. } => {
                    self.stats.ecc_corrected += 1;
                    let repaired = MemWord {
                        word: Word::from_raw(data, cell.word.is_pointer()),
                        sync: cell.sync,
                        ecc: encode(data),
                    };
                    // Scrub the corrected word back to the array.
                    self.words[addr as usize + i] = repaired;
                    Some(repaired)
                }
                Decoded::DoubleError => {
                    self.stats.ecc_double_errors += 1;
                    None
                }
            };
        }
        (first, last)
    }

    /// Write `words` starting at `addr`, beginning no earlier than `now`;
    /// returns the completion cycle. Check bits are recomputed.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the capacity.
    pub fn write(&mut self, now: u64, addr: u64, words: &[MemWord]) -> u64 {
        assert!(
            addr + words.len() as u64 <= self.cfg.capacity_words,
            "SDRAM write out of range: {addr:#x}+{}",
            words.len()
        );
        let first = self.access_timing(now, addr, words.len() as u64);
        for (i, w) in words.iter().enumerate() {
            let mut cell = *w;
            cell.ecc = encode(cell.word.bits());
            self.words[addr as usize + i] = cell;
        }
        first + self.cfg.burst_per_word * (words.len() as u64).saturating_sub(1)
    }

    /// Zero-time backdoor read for loaders, debuggers and tests.
    #[must_use]
    pub fn peek(&self, addr: u64) -> MemWord {
        self.words[addr as usize]
    }

    /// Zero-time backdoor write for loaders, debuggers and tests.
    pub fn poke(&mut self, addr: u64, w: MemWord) {
        let mut cell = w;
        cell.ecc = encode(cell.word.bits());
        self.words[addr as usize] = cell;
    }

    /// Flip a stored data bit (fault injection for the SECDED tests).
    pub fn inject_bit_flip(&mut self, addr: u64, bit: u32) {
        let cell = &mut self.words[addr as usize];
        let flipped = cell.word.bits() ^ (1u64 << bit);
        cell.word = Word::from_raw(flipped, cell.word.is_pointer());
        // Deliberately do NOT recompute ECC: that's the point.
    }

    /// Serialize the array (run-length encoded — a mostly-zero megaword
    /// array collapses to a handful of runs), controller state and
    /// statistics into a checkpoint stream.
    pub fn save_state(&self, e: &mut Enc) {
        e.u64(self.cfg.capacity_words);
        let mut i = 0usize;
        while i < self.words.len() {
            let w = self.words[i];
            let mut run = 1usize;
            while i + run < self.words.len() && self.words[i + run] == w {
                run += 1;
            }
            e.u64(run as u64);
            e.u64(w.word.bits());
            e.bool(w.word.is_pointer());
            e.bool(w.sync);
            e.u8(w.ecc);
            i += run;
        }
        e.u64(0); // run terminator
        e.usize(self.open_rows.len());
        for r in &self.open_rows {
            match r {
                None => e.u8(0),
                Some(v) => {
                    e.u8(1);
                    e.u64(*v);
                }
            }
        }
        e.u64(self.busy_until);
        let s = &self.stats;
        for v in [
            s.row_hits,
            s.row_misses,
            s.words_transferred,
            s.ecc_corrected,
            s.ecc_double_errors,
        ] {
            e.u64(v);
        }
    }

    /// Restore state saved by [`Sdram::save_state`].
    ///
    /// # Errors
    ///
    /// [`CkptError`] on truncated input or a geometry mismatch (the
    /// checkpoint came from a differently-sized SDRAM).
    pub fn load_state(&mut self, d: &mut Dec<'_>) -> Result<(), CkptError> {
        let cap = d.u64()?;
        if cap != self.cfg.capacity_words {
            return Err(CkptError(format!(
                "SDRAM capacity mismatch: checkpoint has {cap} words, array has {}",
                self.cfg.capacity_words
            )));
        }
        let mut i = 0usize;
        loop {
            let run = d.u64()? as usize;
            if run == 0 {
                break;
            }
            let bits = d.u64()?;
            let tag = d.bool()?;
            let sync = d.bool()?;
            let ecc = d.u8()?;
            let w = MemWord {
                word: Word::from_raw(bits, tag),
                sync,
                ecc,
            };
            if i + run > self.words.len() {
                return Err(CkptError("SDRAM runs overflow the array".into()));
            }
            self.words[i..i + run].fill(w);
            i += run;
        }
        if i != self.words.len() {
            return Err(CkptError(format!(
                "SDRAM runs cover {i} of {} words",
                self.words.len()
            )));
        }
        let banks = d.usize()?;
        if banks != self.open_rows.len() {
            return Err(CkptError("SDRAM bank count mismatch".into()));
        }
        for r in &mut self.open_rows {
            *r = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                b => return Err(CkptError(format!("bad open-row tag {b}"))),
            };
        }
        self.busy_until = d.u64()?;
        self.stats = SdramStats {
            row_hits: d.u64()?,
            row_misses: d.u64()?,
            words_transferred: d.u64()?,
            ecc_corrected: d.u64()?,
            ecc_double_errors: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Sdram {
        Sdram::new(SdramConfig {
            capacity_words: 4096,
            ..SdramConfig::default()
        })
    }

    #[test]
    fn poke_peek_round_trip() {
        let mut d = small();
        d.poke(10, MemWord::with_sync(Word::from_i64(-3), true));
        let w = d.peek(10);
        assert_eq!(w.word.as_i64(), -3);
        assert!(w.sync);
    }

    #[test]
    fn row_hit_vs_miss_timing() {
        let mut d = small();
        let (f1, _, _) = d.read(0, 0, 1);
        // First access: row miss.
        assert_eq!(f1, 9 + 6);
        let (f2, _, _) = d.read(f1, 1, 1);
        // Same row: hit.
        assert_eq!(f2, f1 + 9);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn page_mode_off_always_misses() {
        let mut d = Sdram::new(SdramConfig {
            capacity_words: 4096,
            page_mode: false,
            ..SdramConfig::default()
        });
        d.read(0, 0, 1);
        d.read(100, 1, 1);
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn burst_timing() {
        let mut d = small();
        let (first, last, words) = d.read(0, 0, 8);
        assert_eq!(words.len(), 8);
        assert_eq!(last, first + 7);
    }

    #[test]
    fn controller_serializes() {
        let mut d = small();
        let (f1, l1, _) = d.read(0, 0, 8);
        let (f2, _, _) = d.read(f1, 0, 1); // issued while burst in flight
        assert!(f2 >= l1, "second access must wait for the burst");
    }

    #[test]
    fn ecc_corrects_and_scrubs() {
        let mut d = small();
        d.poke(5, MemWord::new(Word::from_u64(0xFFFF)));
        d.inject_bit_flip(5, 3);
        let (_, _, words) = d.read(0, 5, 1);
        assert_eq!(words[0].unwrap().word.bits(), 0xFFFF);
        assert_eq!(d.stats().ecc_corrected, 1);
        // Scrubbed: a second read is clean.
        let (_, _, again) = d.read(50, 5, 1);
        assert_eq!(again[0].unwrap().word.bits(), 0xFFFF);
        assert_eq!(d.stats().ecc_corrected, 1);
    }

    #[test]
    fn ecc_flags_double_errors() {
        let mut d = small();
        d.poke(5, MemWord::new(Word::from_u64(0xABCD)));
        d.inject_bit_flip(5, 3);
        d.inject_bit_flip(5, 17);
        let (_, _, words) = d.read(0, 5, 1);
        assert!(words[0].is_none());
        assert_eq!(d.stats().ecc_double_errors, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let mut d = small();
        let _ = d.read(0, 4090, 8);
    }

    /// A lived-in SDRAM (writes, pending ECC damage, open rows, busy
    /// controller) round-trips through the RLE checkpoint codec.
    #[test]
    fn sdram_state_round_trips() {
        let mut d = small();
        d.poke(5, MemWord::with_sync(Word::from_u64(0xABCD), true));
        d.poke(4000, MemWord::new(Word::from_i64(-9)));
        d.inject_bit_flip(5, 3); // un-scrubbed upset survives the trip
        let _ = d.read(0, 100, 8);
        let mut e = Enc::new();
        d.save_state(&mut e);
        let bytes = e.finish();
        let mut r = small();
        let mut dec = Dec::new(&bytes);
        r.load_state(&mut dec).expect("load");
        assert_eq!(dec.remaining(), 0);
        assert_eq!(r.stats(), d.stats());
        for addr in [0u64, 5, 100, 4000, 4095] {
            assert_eq!(r.peek(addr), d.peek(addr), "word {addr}");
        }
        // The restored array still corrects (and counts) the upset.
        let (_, _, words) = r.read(200, 5, 1);
        assert_eq!(words[0].unwrap().word.bits(), 0xABCD);
        assert_eq!(r.stats().ecc_corrected, 1);
        // A different geometry refuses the checkpoint.
        let mut other = Sdram::new(SdramConfig {
            capacity_words: 2048,
            ..SdramConfig::default()
        });
        assert!(other.load_state(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn different_banks_track_rows_independently() {
        let mut d = small();
        // addr 0 -> row_index 0 -> bank 0; addr 1024 -> row_index 1 -> bank 1.
        let (f1, _, _) = d.read(0, 0, 1);
        let (f2, _, _) = d.read(f1, 1024, 1);
        let (f3, _, _) = d.read(f2, 0, 1);
        let (f4, _, _) = d.read(f3, 1024, 1);
        // Third and fourth accesses hit their banks' still-open rows.
        assert_eq!(f3 - f2, 9);
        assert_eq!(f4 - f3, 9);
        assert_eq!(d.stats().row_hits, 2);
    }
}
