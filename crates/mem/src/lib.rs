//! # mm-mem — the M-Machine node memory system
//!
//! The MAP chip's memory subsystem as described in §2 of *The M-Machine
//! Multicomputer*: a four-bank word-interleaved virtually-addressed cache
//! ([`cache`]), an external SDRAM with page-mode timing and SECDED error
//! control ([`dram`], [`secded`]), the LTLB with per-block status bits
//! ([`ltlb`]) backed by an in-memory local page table ([`lpt`]), a
//! synchronization bit on every memory word, and the event-generating
//! pipeline that ties them together ([`memsys`]).
//!
//! ```
//! use mm_mem::memsys::{MemConfig, MemorySystem, MemRequest};
//! use mm_mem::lpt::Lpt;
//! use mm_mem::ltlb::{BlockStatus, LtlbEntry};
//!
//! # fn main() {
//! let mut ms = MemorySystem::new(MemConfig::default());
//! ms.set_lpt(Lpt::new(1024, 64));
//! // Map virtual page 0 at physical page 16, all blocks READ/WRITE.
//! let lpt = ms.lpt().unwrap();
//! let entry = LtlbEntry::uniform(0, 16, BlockStatus::ReadWrite, 0);
//! let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
//! assert!(ms.tlb_install(slot));
//!
//! ms.submit(MemRequest::load(1, 8, 0)).unwrap();
//! let mut cycle = 0;
//! loop {
//!     let (resps, _) = ms.step(cycle);
//!     if let Some(r) = resps.first() {
//!         assert_eq!(r.value.bits(), 0);
//!         break;
//!     }
//!     cycle += 1;
//! }
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod lpt;
pub mod ltlb;
pub mod memsys;
pub mod secded;

pub use cache::{Cache, CacheConfig, LINE_WORDS};
pub use dram::{MemWord, Sdram, SdramConfig};
pub use lpt::Lpt;
pub use ltlb::{BlockStatus, Ltlb, LtlbEntry, BLOCKS_PER_PAGE, BLOCK_WORDS, PAGE_WORDS};
pub use memsys::{
    AccessKind, MemConfig, MemEvent, MemEventKind, MemRequest, MemResponse, MemorySystem,
};
