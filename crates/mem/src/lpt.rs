//! The Local Page Table: a software-managed hash table in local DRAM.
//!
//! The LTLB "caches local page table (LPT) entries" (§2); on a miss, a
//! software handler walks this table, installs the entry, and restarts the
//! reference (§3.3). The table lives in *physical* memory so the handler
//! can reach it without translation.
//!
//! ## Layout
//!
//! `slots` (a power of two) entries of 4 words each, starting at `base`:
//!
//! | word | contents |
//! |------|----------|
//! | 0    | bit 63 = valid, bits 53:0 = vpn |
//! | 1    | ppn |
//! | 2    | block status bits for blocks 0..32 |
//! | 3    | block status bits for blocks 32..64 |
//!
//! The probe sequence is `slot = vpn & (slots-1)`, then linear probing —
//! simple enough for the assembly-language miss handler to replicate
//! (see `mm-runtime`).

use crate::dram::{MemWord, Sdram};
use crate::ltlb::LtlbEntry;
use mm_isa::word::Word;

/// Words per LPT entry.
pub const ENTRY_WORDS: u64 = 4;
/// Bit 63 of word 0 marks a slot valid.
pub const VALID_BIT: u64 = 1 << 63;

/// A view of the LPT resident at `base` in a node's physical memory.
///
/// All accesses are zero-time backdoors: the *hardware* paths that consult
/// the LPT (LTLB refill via `tlbwr`, eviction write-back) are charged by
/// the memory system, and the *software* path (the miss handler) performs
/// real timed loads of these same words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lpt {
    /// Physical word address of slot 0.
    pub base: u64,
    /// Number of slots (power of two).
    pub slots: u64,
}

impl Lpt {
    /// Define a table at `base` with `slots` entries.
    ///
    /// # Panics
    ///
    /// Panics unless `slots` is a non-zero power of two.
    #[must_use]
    pub fn new(base: u64, slots: u64) -> Lpt {
        assert!(slots.is_power_of_two(), "LPT slots must be a power of two");
        Lpt { base, slots }
    }

    /// Total words occupied by the table.
    #[must_use]
    pub fn size_words(self) -> u64 {
        self.slots * ENTRY_WORDS
    }

    /// Physical address of slot `i`.
    #[must_use]
    pub fn slot_addr(self, i: u64) -> u64 {
        self.base + (i % self.slots) * ENTRY_WORDS
    }

    /// The initial probe slot for `vpn`.
    #[must_use]
    pub fn home_slot(self, vpn: u64) -> u64 {
        vpn & (self.slots - 1)
    }

    /// Insert or update the mapping for `entry.vpn`.
    ///
    /// Returns the physical address of the written slot, or `None` if the
    /// table is full.
    pub fn insert(self, mem: &mut Sdram, entry: &LtlbEntry) -> Option<u64> {
        let start = self.home_slot(entry.vpn);
        for k in 0..self.slots {
            let addr = self.slot_addr(start + k);
            let w0 = mem.peek(addr).word.bits();
            let occupied = w0 & VALID_BIT != 0;
            if !occupied || (w0 & !VALID_BIT) == entry.vpn {
                mem.poke(addr, MemWord::new(Word::from_u64(VALID_BIT | entry.vpn)));
                mem.poke(addr + 1, MemWord::new(Word::from_u64(entry.ppn)));
                mem.poke(addr + 2, MemWord::new(Word::from_u64(entry.status_lo)));
                mem.poke(addr + 3, MemWord::new(Word::from_u64(entry.status_hi)));
                return Some(addr);
            }
        }
        None
    }

    /// Find the slot holding `vpn`, returning its physical address.
    #[must_use]
    pub fn find(self, mem: &Sdram, vpn: u64) -> Option<u64> {
        let start = self.home_slot(vpn);
        for k in 0..self.slots {
            let addr = self.slot_addr(start + k);
            let w0 = mem.peek(addr).word.bits();
            if w0 & VALID_BIT == 0 {
                return None; // linear probing stops at the first hole
            }
            if w0 & !VALID_BIT == vpn {
                return Some(addr);
            }
        }
        None
    }

    /// Read the entry stored at slot address `addr` (as `tlbwr` does).
    #[must_use]
    pub fn read_entry(self, mem: &Sdram, addr: u64) -> Option<LtlbEntry> {
        let w0 = mem.peek(addr).word.bits();
        if w0 & VALID_BIT == 0 {
            return None;
        }
        Some(LtlbEntry {
            vpn: w0 & !VALID_BIT,
            ppn: mem.peek(addr + 1).word.bits(),
            status_lo: mem.peek(addr + 2).word.bits(),
            status_hi: mem.peek(addr + 3).word.bits(),
            lpt_addr: addr,
        })
    }

    /// Look up `vpn` and decode its entry in one step.
    #[must_use]
    pub fn lookup(self, mem: &Sdram, vpn: u64) -> Option<LtlbEntry> {
        self.find(mem, vpn).and_then(|a| self.read_entry(mem, a))
    }

    /// Write an (evicted, possibly dirtied) LTLB entry back to its slot.
    pub fn write_back(self, mem: &mut Sdram, entry: &LtlbEntry) {
        let addr = entry.lpt_addr;
        mem.poke(addr, MemWord::new(Word::from_u64(VALID_BIT | entry.vpn)));
        mem.poke(addr + 1, MemWord::new(Word::from_u64(entry.ppn)));
        mem.poke(addr + 2, MemWord::new(Word::from_u64(entry.status_lo)));
        mem.poke(addr + 3, MemWord::new(Word::from_u64(entry.status_hi)));
    }

    /// Remove the mapping for `vpn`. Returns `true` if present.
    ///
    /// (Removal leaves a tombstone-free table by re-inserting the probe
    /// chain after the hole, preserving linear-probe reachability.)
    pub fn remove(self, mem: &mut Sdram, vpn: u64) -> bool {
        let Some(addr) = self.find(mem, vpn) else {
            return false;
        };
        mem.poke(addr, MemWord::new(Word::ZERO));
        // Re-insert everything in the chain following the hole.
        let hole_slot = (addr - self.base) / ENTRY_WORDS;
        let mut k = hole_slot + 1;
        loop {
            let a = self.slot_addr(k);
            let w0 = mem.peek(a).word.bits();
            if w0 & VALID_BIT == 0 {
                break;
            }
            if let Some(entry) = self.read_entry(mem, a) {
                mem.poke(a, MemWord::new(Word::ZERO));
                let _ = self.insert(mem, &entry);
            }
            k += 1;
            if k % self.slots == hole_slot {
                break;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::SdramConfig;
    use crate::ltlb::BlockStatus;

    fn mem() -> Sdram {
        Sdram::new(SdramConfig {
            capacity_words: 8192,
            ..SdramConfig::default()
        })
    }

    fn entry(vpn: u64, ppn: u64) -> LtlbEntry {
        LtlbEntry::uniform(vpn, ppn, BlockStatus::ReadWrite, 0)
    }

    #[test]
    fn insert_and_lookup() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 16);
        let addr = lpt.insert(&mut m, &entry(5, 9)).unwrap();
        assert_eq!(addr, lpt.slot_addr(5));
        let e = lpt.lookup(&m, 5).unwrap();
        assert_eq!(e.ppn, 9);
        assert_eq!(e.lpt_addr, addr);
        assert!(lpt.lookup(&m, 6).is_none());
    }

    #[test]
    fn linear_probe_on_collision() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 16);
        // vpns 3 and 19 collide (both hash to slot 3).
        lpt.insert(&mut m, &entry(3, 1)).unwrap();
        let second = lpt.insert(&mut m, &entry(19, 2)).unwrap();
        assert_eq!(second, lpt.slot_addr(4));
        assert_eq!(lpt.lookup(&m, 3).unwrap().ppn, 1);
        assert_eq!(lpt.lookup(&m, 19).unwrap().ppn, 2);
    }

    #[test]
    fn update_in_place() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 16);
        lpt.insert(&mut m, &entry(3, 1)).unwrap();
        lpt.insert(&mut m, &entry(3, 7)).unwrap();
        assert_eq!(lpt.lookup(&m, 3).unwrap().ppn, 7);
    }

    #[test]
    fn full_table_rejects() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 2);
        assert!(lpt.insert(&mut m, &entry(0, 0)).is_some());
        assert!(lpt.insert(&mut m, &entry(1, 1)).is_some());
        assert!(lpt.insert(&mut m, &entry(2, 2)).is_none());
    }

    #[test]
    fn write_back_persists_status() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 16);
        let addr = lpt.insert(&mut m, &entry(3, 1)).unwrap();
        let mut e = lpt.read_entry(&m, addr).unwrap();
        e.set_block_status(7, BlockStatus::Dirty);
        lpt.write_back(&mut m, &e);
        assert_eq!(
            lpt.lookup(&m, 3).unwrap().block_status(7),
            BlockStatus::Dirty
        );
    }

    #[test]
    fn remove_repairs_probe_chain() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 16);
        lpt.insert(&mut m, &entry(3, 1)).unwrap();
        lpt.insert(&mut m, &entry(19, 2)).unwrap(); // probes to slot 4
        assert!(lpt.remove(&mut m, 3));
        // 19 must still be reachable after the hole is repaired.
        assert_eq!(lpt.lookup(&m, 19).unwrap().ppn, 2);
        assert!(!lpt.remove(&mut m, 3));
    }

    #[test]
    fn wraps_around_table_end() {
        let mut m = mem();
        let lpt = Lpt::new(1024, 4);
        lpt.insert(&mut m, &entry(3, 1)).unwrap(); // slot 3 (last)
        lpt.insert(&mut m, &entry(7, 2)).unwrap(); // collides, wraps to 0
        assert_eq!(lpt.lookup(&m, 7).unwrap().ppn, 2);
        assert_eq!(lpt.find(&m, 7).unwrap(), lpt.slot_addr(0));
    }
}
