//! The Local Translation Lookaside Buffer and per-block status bits.
//!
//! The LTLB caches local page table (LPT) entries; pages are 512 words
//! (64 blocks of 8 words) (§2). "In addition to the virtual to physical
//! mapping, each LTLB (and LPT) entry contains 2 status bits for each
//! cache block in the page", providing the fine-grained INVALID /
//! READ-ONLY / READ/WRITE / DIRTY states that let local DRAM cache remote
//! data (§4.3).

use mm_faults::{CkptError, Dec, Enc};

/// Words per local page.
pub const PAGE_WORDS: u64 = 512;
/// 8-word blocks per page.
pub const BLOCKS_PER_PAGE: u64 = 64;
/// Words per block (= cache line).
pub const BLOCK_WORDS: u64 = 8;

/// The four block states encoded by the two status bits (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum BlockStatus {
    /// "The block may not be read, written, or placed in the hardware cache."
    Invalid = 0,
    /// "The block may be read, but not written."
    ReadOnly = 1,
    /// "The block may be read or written."
    ReadWrite = 2,
    /// "The block may be read or written, and it has been written since
    /// being copied to the local node."
    Dirty = 3,
}

impl BlockStatus {
    /// Decode from two bits.
    #[must_use]
    pub fn from_bits(bits: u8) -> BlockStatus {
        match bits & 0b11 {
            0 => BlockStatus::Invalid,
            1 => BlockStatus::ReadOnly,
            2 => BlockStatus::ReadWrite,
            _ => BlockStatus::Dirty,
        }
    }

    /// The two-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// May the block be read?
    #[must_use]
    pub fn readable(self) -> bool {
        self != BlockStatus::Invalid
    }

    /// May the block be written?
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, BlockStatus::ReadWrite | BlockStatus::Dirty)
    }
}

/// One LTLB entry: a virtual→physical page mapping plus 64 × 2 status
/// bits, packed exactly as the 4-word in-memory LPT entry (see
/// [`crate::lpt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtlbEntry {
    /// Virtual page number (`va / 512`).
    pub vpn: u64,
    /// Physical page number.
    pub ppn: u64,
    /// Status bits for blocks 0..32 (2 bits each, block 0 in bits 1:0).
    pub status_lo: u64,
    /// Status bits for blocks 32..64.
    pub status_hi: u64,
    /// Physical word address of this entry's LPT slot, for write-back of
    /// modified status bits on eviction.
    pub lpt_addr: u64,
}

impl LtlbEntry {
    /// An entry with every block in the given state.
    #[must_use]
    pub fn uniform(vpn: u64, ppn: u64, status: BlockStatus, lpt_addr: u64) -> LtlbEntry {
        let two = u64::from(status.bits());
        let mut packed = 0u64;
        for b in 0..32 {
            packed |= two << (2 * b);
        }
        LtlbEntry {
            vpn,
            ppn,
            status_lo: packed,
            status_hi: packed,
            lpt_addr,
        }
    }

    /// Status of block `block` (0..64).
    ///
    /// # Panics
    ///
    /// Panics if `block >= 64`.
    #[must_use]
    pub fn block_status(&self, block: u64) -> BlockStatus {
        assert!(block < BLOCKS_PER_PAGE);
        let (word, idx) = if block < 32 {
            (self.status_lo, block)
        } else {
            (self.status_hi, block - 32)
        };
        #[allow(clippy::cast_possible_truncation)]
        BlockStatus::from_bits(((word >> (2 * idx)) & 0b11) as u8)
    }

    /// Set the status of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= 64`.
    pub fn set_block_status(&mut self, block: u64, status: BlockStatus) {
        assert!(block < BLOCKS_PER_PAGE);
        let two = u64::from(status.bits());
        let (word, idx) = if block < 32 {
            (&mut self.status_lo, block)
        } else {
            (&mut self.status_hi, block - 32)
        };
        *word = (*word & !(0b11 << (2 * idx))) | (two << (2 * idx));
    }

    /// Status of the block containing page-offset word `offset` (0..512).
    #[must_use]
    pub fn status_for_offset(&self, offset: u64) -> BlockStatus {
        self.block_status(offset / BLOCK_WORDS)
    }

    /// Physical address of page-offset word `offset`.
    #[must_use]
    pub fn translate(&self, offset: u64) -> u64 {
        self.ppn * PAGE_WORDS + offset
    }
}

/// Statistics for the LTLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LtlbStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// The fully-associative LTLB with LRU replacement.
///
/// A `vpn → slot` index backs every lookup: the cycle kernel consults
/// the LTLB on each miss-path translation *and* on each store's
/// dirty-bit update, so the old linear scan over all entries (2.5 KB
/// touched per probe at the default capacity) was one of the hottest
/// loops in the whole simulator. The index is consulted only by direct
/// key lookup — never iterated — so hash-map ordering cannot leak into
/// simulation results.
#[derive(Debug, Clone)]
pub struct Ltlb {
    entries: Vec<Option<LtlbEntry>>,
    last_use: Vec<u64>,
    /// Resident vpn → slot index.
    map: std::collections::HashMap<u64, usize>,
    clock: u64,
    stats: LtlbStats,
}

impl Ltlb {
    /// An empty LTLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Ltlb {
        assert!(capacity > 0, "LTLB needs at least one entry");
        Ltlb {
            entries: vec![None; capacity],
            last_use: vec![0; capacity],
            map: std::collections::HashMap::with_capacity(capacity),
            clock: 0,
            stats: LtlbStats::default(),
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> LtlbStats {
        self.stats
    }

    /// Look up a virtual page number, updating LRU state and counters.
    pub fn lookup(&mut self, vpn: u64) -> Option<&mut LtlbEntry> {
        self.clock += 1;
        if let Some(&i) = self.map.get(&vpn) {
            self.stats.hits += 1;
            self.last_use[i] = self.clock;
            return self.entries[i].as_mut();
        }
        self.stats.misses += 1;
        None
    }

    /// Mutable access without touching LRU state or counters (firmware
    /// coherence updates, dirty-bit marking).
    pub fn find_mut(&mut self, vpn: u64) -> Option<&mut LtlbEntry> {
        let i = *self.map.get(&vpn)?;
        self.entries[i].as_mut()
    }

    /// Peek without touching LRU state or counters.
    #[must_use]
    pub fn probe(&self, vpn: u64) -> Option<&LtlbEntry> {
        let i = *self.map.get(&vpn)?;
        self.entries[i].as_ref()
    }

    /// Insert an entry, replacing any existing mapping for the same vpn,
    /// otherwise evicting the LRU victim. The evicted entry is returned so
    /// the memory system can write its (possibly dirtied) status bits back
    /// to the LPT.
    pub fn insert(&mut self, entry: LtlbEntry) -> Option<LtlbEntry> {
        self.clock += 1;
        // Same-vpn replacement.
        if let Some(&i) = self.map.get(&entry.vpn) {
            let old = self.entries[i].replace(entry);
            self.last_use[i] = self.clock;
            return old;
        }
        // Free slot.
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                self.map.insert(entry.vpn, i);
                *slot = Some(entry);
                self.last_use[i] = self.clock;
                return None;
            }
        }
        // LRU eviction.
        let victim = self
            .last_use
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("non-empty LTLB");
        self.stats.evictions += 1;
        let old = self.entries[victim].replace(entry);
        if let Some(e) = &old {
            self.map.remove(&e.vpn);
        }
        self.map.insert(entry.vpn, victim);
        self.last_use[victim] = self.clock;
        old
    }

    /// Drop the mapping for `vpn`, returning it (for LPT write-back).
    pub fn invalidate(&mut self, vpn: u64) -> Option<LtlbEntry> {
        let i = self.map.remove(&vpn)?;
        self.entries[i].take()
    }

    /// Iterate over resident entries.
    pub fn iter(&self) -> impl Iterator<Item = &LtlbEntry> {
        self.entries.iter().flatten()
    }

    /// Serialize slots (position-preserving, so LRU victim selection is
    /// unchanged after restore), LRU clocks and statistics into a
    /// checkpoint stream. The `vpn → slot` index is not written — it is
    /// a pure function of the slots and is rebuilt on load.
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for (slot, lu) in self.entries.iter().zip(&self.last_use) {
            match slot {
                None => e.u8(0),
                Some(en) => {
                    e.u8(1);
                    e.u64(en.vpn);
                    e.u64(en.ppn);
                    e.u64(en.status_lo);
                    e.u64(en.status_hi);
                    e.u64(en.lpt_addr);
                }
            }
            e.u64(*lu);
        }
        e.u64(self.clock);
        e.u64(self.stats.hits);
        e.u64(self.stats.misses);
        e.u64(self.stats.evictions);
    }

    /// Restore state saved by [`Ltlb::save_state`], rebuilding the
    /// lookup index from the slots.
    ///
    /// # Errors
    ///
    /// [`CkptError`] on truncated input or a capacity mismatch.
    pub fn load_state(&mut self, d: &mut Dec<'_>) -> Result<(), CkptError> {
        let n = d.usize()?;
        if n != self.entries.len() {
            return Err(CkptError(format!(
                "LTLB capacity mismatch: checkpoint has {n}, TLB has {}",
                self.entries.len()
            )));
        }
        self.map.clear();
        for i in 0..n {
            self.entries[i] = match d.u8()? {
                0 => None,
                1 => {
                    let en = LtlbEntry {
                        vpn: d.u64()?,
                        ppn: d.u64()?,
                        status_lo: d.u64()?,
                        status_hi: d.u64()?,
                        lpt_addr: d.u64()?,
                    };
                    self.map.insert(en.vpn, i);
                    Some(en)
                }
                b => return Err(CkptError(format!("bad LTLB slot tag {b}"))),
            };
            self.last_use[i] = d.u64()?;
        }
        self.clock = d.u64()?;
        self.stats = LtlbStats {
            hits: d.u64()?,
            misses: d.u64()?,
            evictions: d.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_status_bits_round_trip() {
        for s in [
            BlockStatus::Invalid,
            BlockStatus::ReadOnly,
            BlockStatus::ReadWrite,
            BlockStatus::Dirty,
        ] {
            assert_eq!(BlockStatus::from_bits(s.bits()), s);
        }
    }

    #[test]
    fn permissions() {
        assert!(!BlockStatus::Invalid.readable());
        assert!(BlockStatus::ReadOnly.readable());
        assert!(!BlockStatus::ReadOnly.writable());
        assert!(BlockStatus::ReadWrite.writable());
        assert!(BlockStatus::Dirty.writable());
    }

    #[test]
    fn entry_status_accessors() {
        let mut e = LtlbEntry::uniform(1, 2, BlockStatus::ReadWrite, 0);
        assert_eq!(e.block_status(0), BlockStatus::ReadWrite);
        assert_eq!(e.block_status(63), BlockStatus::ReadWrite);
        e.set_block_status(0, BlockStatus::Invalid);
        e.set_block_status(33, BlockStatus::Dirty);
        assert_eq!(e.block_status(0), BlockStatus::Invalid);
        assert_eq!(e.block_status(1), BlockStatus::ReadWrite);
        assert_eq!(e.block_status(33), BlockStatus::Dirty);
        assert_eq!(e.status_for_offset(0), BlockStatus::Invalid);
        assert_eq!(e.status_for_offset(8), BlockStatus::ReadWrite);
        assert_eq!(e.status_for_offset(33 * 8 + 3), BlockStatus::Dirty);
    }

    #[test]
    fn entry_translate() {
        let e = LtlbEntry::uniform(7, 3, BlockStatus::ReadWrite, 0);
        assert_eq!(e.translate(0), 3 * 512);
        assert_eq!(e.translate(511), 3 * 512 + 511);
    }

    #[test]
    fn lookup_hit_and_miss() {
        let mut t = Ltlb::new(4);
        assert!(t.lookup(5).is_none());
        t.insert(LtlbEntry::uniform(5, 1, BlockStatus::ReadWrite, 0));
        assert!(t.lookup(5).is_some());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Ltlb::new(2);
        t.insert(LtlbEntry::uniform(1, 1, BlockStatus::ReadWrite, 0));
        t.insert(LtlbEntry::uniform(2, 2, BlockStatus::ReadWrite, 0));
        let _ = t.lookup(1); // make 2 the LRU
        let evicted = t
            .insert(LtlbEntry::uniform(3, 3, BlockStatus::ReadWrite, 0))
            .expect("eviction");
        assert_eq!(evicted.vpn, 2);
        assert!(t.probe(1).is_some());
        assert!(t.probe(3).is_some());
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn same_vpn_replaces() {
        let mut t = Ltlb::new(2);
        t.insert(LtlbEntry::uniform(1, 1, BlockStatus::ReadWrite, 0));
        let old = t
            .insert(LtlbEntry::uniform(1, 9, BlockStatus::ReadOnly, 0))
            .expect("old mapping returned");
        assert_eq!(old.ppn, 1);
        assert_eq!(t.probe(1).unwrap().ppn, 9);
    }

    #[test]
    fn invalidate_removes() {
        let mut t = Ltlb::new(2);
        t.insert(LtlbEntry::uniform(1, 1, BlockStatus::ReadWrite, 0));
        assert!(t.invalidate(1).is_some());
        assert!(t.probe(1).is_none());
        assert!(t.invalidate(1).is_none());
    }

    /// Restore preserves slot positions (and therefore LRU victim
    /// choice) and rebuilds the lookup index.
    #[test]
    fn ltlb_state_round_trips() {
        let mut t = Ltlb::new(2);
        t.insert(LtlbEntry::uniform(1, 1, BlockStatus::ReadWrite, 0));
        t.insert(LtlbEntry::uniform(2, 2, BlockStatus::ReadOnly, 64));
        let _ = t.lookup(1); // 2 becomes the LRU victim
        let mut e = Enc::new();
        t.save_state(&mut e);
        let bytes = e.finish();
        let mut r = Ltlb::new(2);
        let mut d = Dec::new(&bytes);
        r.load_state(&mut d).expect("load");
        assert_eq!(d.remaining(), 0);
        assert_eq!(r.stats(), t.stats());
        assert_eq!(r.probe(1).unwrap().ppn, 1);
        assert_eq!(r.probe(2).unwrap().ppn, 2);
        let evicted = r
            .insert(LtlbEntry::uniform(3, 3, BlockStatus::ReadWrite, 0))
            .expect("eviction");
        assert_eq!(evicted.vpn, 2, "LRU order survives the round trip");
        assert!(Ltlb::new(4).load_state(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn mutation_through_lookup_persists() {
        let mut t = Ltlb::new(2);
        t.insert(LtlbEntry::uniform(1, 1, BlockStatus::ReadWrite, 0));
        t.lookup(1).unwrap().set_block_status(5, BlockStatus::Dirty);
        assert_eq!(t.probe(1).unwrap().block_status(5), BlockStatus::Dirty);
    }
}
