//! Integration tests for the memory-system pipeline, including the local
//! rows of the paper's Table 1.

use mm_isa::op::{SyncPost, SyncPre};
use mm_isa::word::Word;
use mm_mem::lpt::Lpt;
use mm_mem::ltlb::{BlockStatus, LtlbEntry, PAGE_WORDS};
use mm_mem::memsys::{AccessKind, MemConfig, MemEventKind, MemRequest, MemResponse, MemorySystem};
use mm_mem::MemWord;

/// A memory system with vpn 0..8 mapped to ppn 16.. and the LPT at 1024.
fn booted() -> MemorySystem {
    let mut ms = MemorySystem::new(MemConfig::default());
    let lpt = Lpt::new(1024, 64);
    ms.set_lpt(lpt);
    for vpn in 0..8 {
        let entry = LtlbEntry::uniform(vpn, 16 + vpn, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        assert!(ms.tlb_install(slot));
    }
    ms
}

/// Run until the response for `id` arrives; returns (response, cycle).
fn run_until_resp(ms: &mut MemorySystem, id: u64, limit: u64) -> (MemResponse, u64) {
    for cycle in 0..limit {
        let (resps, events) = ms.step(cycle);
        assert!(
            events.is_empty(),
            "unexpected events at cycle {cycle}: {events:?}"
        );
        if let Some(r) = resps.into_iter().find(|r| r.req.id == id) {
            return (r, cycle);
        }
    }
    panic!("no response for request {id} within {limit} cycles");
}

/// Run until any event arrives.
fn run_until_event(ms: &mut MemorySystem, limit: u64) -> mm_mem::MemEvent {
    for cycle in 0..limit {
        let (_, events) = ms.step(cycle);
        if let Some(e) = events.into_iter().next() {
            return e;
        }
    }
    panic!("no event within {limit} cycles");
}

#[test]
fn table1_local_read_miss_then_hit() {
    let mut ms = booted();
    // Cold access: local cache miss — paper says 13 cycles.
    ms.submit(MemRequest::load(1, 8, 0)).unwrap();
    let (r, _) = run_until_resp(&mut ms, 1, 100);
    // Row miss on a cold DRAM adds the precharge penalty over Table 1's
    // open-row number: 13 + 6.
    assert_eq!(r.ready, 13 + 6, "cold (row-miss) local read");

    // Warm DRAM row, cold cache line: exactly the paper's 13 cycles.
    let t0 = 40;
    ms.submit(MemRequest::load(2, 16, 0)).unwrap();
    for cycle in t0..t0 + 1 {
        let _ = cycle;
    }
    let mut issued_at = None;
    for cycle in t0..t0 + 100 {
        if issued_at.is_none() {
            issued_at = Some(cycle);
        }
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 2) {
            assert_eq!(r.ready - t0, 13, "warm-row local cache-miss read");
            break;
        }
        assert!(cycle < t0 + 50, "no response");
    }

    // Now a hit: paper says 3 cycles.
    let t1 = 100;
    ms.submit(MemRequest::load(3, 16, 0)).unwrap();
    for cycle in t1..t1 + 20 {
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 3) {
            assert_eq!(r.ready - t1, 3, "local cache-hit read");
            return;
        }
    }
    panic!("no hit response");
}

#[test]
fn table1_local_write_hit_and_miss() {
    let mut ms = booted();
    // Warm the DRAM row with a read of another line in the same row.
    ms.submit(MemRequest::load(1, 64, 0)).unwrap();
    let _ = run_until_resp(&mut ms, 1, 100);

    // Cache-miss write to a warm row: paper says 19 cycles.
    let t0 = 50;
    ms.submit(MemRequest::store(2, 80, Word::from_u64(42), 0))
        .unwrap();
    let mut done = false;
    for cycle in t0..t0 + 60 {
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 2) {
            assert_eq!(r.ready - t0, 19, "local cache-miss write");
            done = true;
            break;
        }
    }
    assert!(done);

    // Write hit: paper says 2 cycles.
    let t1 = 150;
    ms.submit(MemRequest::store(3, 81, Word::from_u64(43), 0))
        .unwrap();
    for cycle in t1..t1 + 20 {
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 3) {
            assert_eq!(r.ready - t1, 2, "local cache-hit write");
            // And the data is really there.
            assert_eq!(ms.peek_va(81).unwrap().word.bits(), 43);
            return;
        }
    }
    panic!("no write-hit response");
}

#[test]
fn ltlb_miss_raises_event_with_request() {
    let mut ms = booted();
    let va = 100 * PAGE_WORDS; // unmapped page
    ms.submit(MemRequest::load(9, va, 7)).unwrap();
    let e = run_until_event(&mut ms, 50);
    assert_eq!(e.kind, MemEventKind::LtlbMiss);
    assert_eq!(e.req.id, 9);
    assert_eq!(e.req.va, va);
    assert_eq!(e.req.tag, 7);
    // Event is raised ~4 cycles in (2 detect + 1 translate + lookup).
    assert!(e.at <= 5, "LTLB miss event at cycle {}", e.at);
}

#[test]
fn replay_after_tlb_install_completes() {
    let mut ms = booted();
    let vpn = 100;
    let va = vpn * PAGE_WORDS + 3;
    ms.submit(MemRequest::load(9, va, 0)).unwrap();
    let e = run_until_event(&mut ms, 50);
    assert_eq!(e.kind, MemEventKind::LtlbMiss);

    // "Software" installs the mapping and replays (what mrestart does).
    let lpt = ms.lpt().unwrap();
    let entry = LtlbEntry::uniform(vpn, 30, BlockStatus::ReadWrite, 0);
    let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
    assert!(ms.tlb_install(slot));
    ms.submit(e.req).unwrap();
    let (r, _) = run_until_resp(&mut ms, 9, 200);
    assert_eq!(r.value.bits(), 0);
}

#[test]
fn block_status_fault_on_invalid_block() {
    let mut ms = booted();
    let vpn = 5;
    // Mark block 0 of page 5 invalid.
    let lpt = ms.lpt().unwrap();
    let mut entry = LtlbEntry::uniform(vpn, 21, BlockStatus::ReadWrite, 0);
    entry.set_block_status(0, BlockStatus::Invalid);
    let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
    assert!(ms.tlb_install(slot));

    ms.submit(MemRequest::load(1, vpn * PAGE_WORDS, 0)).unwrap();
    let e = run_until_event(&mut ms, 50);
    assert_eq!(
        e.kind,
        MemEventKind::BlockStatusFault {
            status: BlockStatus::Invalid
        }
    );
    // Block 1 is fine.
    ms.submit(MemRequest::load(2, vpn * PAGE_WORDS + 8, 0))
        .unwrap();
    let (r, _) = run_until_resp(&mut ms, 2, 100);
    assert_eq!(r.value.bits(), 0);
}

#[test]
fn store_to_read_only_block_faults_even_on_cache_hit() {
    let mut ms = booted();
    let vpn = 6;
    let lpt = ms.lpt().unwrap();
    let entry = LtlbEntry::uniform(vpn, 22, BlockStatus::ReadOnly, 0);
    let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
    assert!(ms.tlb_install(slot));
    let va = vpn * PAGE_WORDS;

    // Load it into the cache (fills a non-writable line).
    ms.submit(MemRequest::load(1, va, 0)).unwrap();
    let _ = run_until_resp(&mut ms, 1, 100);

    // Store must fault despite the cache hit.
    let t = 60;
    ms.submit(MemRequest::store(2, va, Word::from_u64(1), 0))
        .unwrap();
    for cycle in t..t + 30 {
        let (_, events) = ms.step(cycle);
        if let Some(e) = events.first() {
            assert!(matches!(e.kind, MemEventKind::BlockStatusFault { .. }));
            return;
        }
    }
    panic!("store to read-only cached block did not fault");
}

#[test]
fn dirty_marking_in_block_status() {
    let mut ms = booted();
    ms.submit(MemRequest::store(1, 8, Word::from_u64(5), 0))
        .unwrap();
    let _ = run_until_resp(&mut ms, 1, 100);
    let entry = ms.ltlb_probe(0).unwrap();
    assert_eq!(entry.block_status(1), BlockStatus::Dirty);
    assert_eq!(entry.block_status(0), BlockStatus::ReadWrite);
}

#[test]
fn sync_precondition_faults() {
    let mut ms = booted();
    // Word 8 is empty initially; a pre=Full load must sync-fault.
    let mut req = MemRequest::load(1, 8, 0);
    req.pre = SyncPre::Full;
    ms.submit(req).unwrap();
    let e = run_until_event(&mut ms, 50);
    assert_eq!(e.kind, MemEventKind::SyncFault { sync_was: false });

    // Producer: store with post=SetFull.
    let mut st = MemRequest::store(2, 8, Word::from_u64(77), 0);
    st.post = SyncPost::SetFull;
    ms.submit(st).unwrap();
    let _ = run_until_resp(&mut ms, 2, 200);

    // Consumer: load pre=Full post=SetEmpty now succeeds and empties.
    let t = 100;
    let mut ld = MemRequest::load(3, 8, 0);
    ld.pre = SyncPre::Full;
    ld.post = SyncPost::SetEmpty;
    ms.submit(ld).unwrap();
    for cycle in t..t + 50 {
        let (resps, events) = ms.step(cycle);
        assert!(events.is_empty());
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 3) {
            assert_eq!(r.value.bits(), 77);
            assert!(!ms.peek_va(8).unwrap().sync, "post=SetEmpty applied");
            return;
        }
    }
    panic!("synchronizing load did not complete");
}

#[test]
fn phys_access_bypasses_translation() {
    let mut ms = booted();
    let mut st = MemRequest::store(1, 2000, Word::from_u64(9), 0);
    st.phys = true;
    ms.submit(st).unwrap();
    let (r, _) = run_until_resp(&mut ms, 1, 20);
    assert_eq!(r.ready, 2);
    let mut ld = MemRequest::load(2, 2000, 0);
    ld.phys = true;
    let t = 10;
    ms.submit(ld).unwrap();
    for cycle in t..t + 20 {
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 2) {
            assert_eq!(r.value.bits(), 9);
            assert_eq!(r.ready - t, 3);
            return;
        }
    }
    panic!("phys load incomplete");
}

#[test]
fn bank_queue_overflow_stalls() {
    let mut ms = booted();
    // Same bank (va % 4 == 0): depth is 4.
    for i in 0..4 {
        ms.submit(MemRequest::load(i, i * 4, 0)).unwrap();
    }
    let rejected = ms.submit(MemRequest::load(99, 16, 0));
    assert!(rejected.is_err());
    assert_eq!(ms.stats().bank_stalls, 1);
    // Different bank still accepts.
    ms.submit(MemRequest::load(100, 1, 0)).unwrap();
}

#[test]
fn writeback_on_eviction_preserves_data() {
    let ms = booted();
    // Dirty a line, then evict it by filling the conflicting line
    // (cache has 2048 lines of 8 words: conflict stride = 16384 words).
    // Page space is limited, so shrink: use a small cache instead.
    let mut cfg = MemConfig::default();
    cfg.cache.words_per_bank = 64; // 32 lines, stride 256 words
    let mut ms2 = MemorySystem::new(cfg);
    let lpt = Lpt::new(2048, 64);
    ms2.set_lpt(lpt);
    for vpn in 0..2 {
        let entry = LtlbEntry::uniform(vpn, 16 + vpn, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms2.sdram_mut(), &entry).unwrap();
        assert!(ms2.tlb_install(slot));
    }
    drop(ms);

    ms2.submit(MemRequest::store(1, 8, Word::from_u64(123), 0))
        .unwrap();
    let _ = run_until_resp(&mut ms2, 1, 100);
    // Evict va 8's line by loading va 8+256 (same index, different tag).
    ms2.submit(MemRequest::load(2, 8 + 256, 0)).unwrap();
    let _ = run_until_resp(&mut ms2, 2, 200);
    // The dirty data must have reached DRAM: read it back.
    let t = 300;
    ms2.submit(MemRequest::load(3, 8, 0)).unwrap();
    for cycle in t..t + 100 {
        let (resps, _) = ms2.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 3) {
            assert_eq!(r.value.bits(), 123);
            return;
        }
    }
    panic!("written-back data lost");
}

#[test]
fn flush_and_downgrade_blocks() {
    let mut ms = booted();
    ms.submit(MemRequest::store(1, 8, Word::from_u64(5), 0))
        .unwrap();
    let _ = run_until_resp(&mut ms, 1, 100);
    // Flush pushes the dirty line to DRAM and drops it.
    ms.flush_block(8);
    let pa = ms.translate(8).unwrap();
    assert_eq!(ms.peek_phys(pa).word.bits(), 5);

    // Downgrade: reload, then downgrade; store should then miss/fault.
    ms.submit(MemRequest::load(2, 8, 0)).unwrap();
    let _ = run_until_resp(&mut ms, 2, 200);
    ms.downgrade_block(8);
    let t = 300;
    ms.submit(MemRequest::store(3, 8, Word::from_u64(6), 0))
        .unwrap();
    for cycle in t..t + 50 {
        let (_, events) = ms.step(cycle);
        if let Some(e) = events.first() {
            assert!(matches!(e.kind, MemEventKind::BlockStatusFault { .. }));
            return;
        }
    }
    panic!("store to downgraded line did not fault");
}

#[test]
fn pointer_tag_survives_store_load() {
    let mut ms = booted();
    let ptr = mm_isa::GuardedPointer::new(mm_isa::Perm::ReadWrite, 4, 0x40).unwrap();
    let w = Word::from_pointer(ptr);
    ms.submit(MemRequest::store(1, 9, w, 0)).unwrap();
    let _ = run_until_resp(&mut ms, 1, 100);
    let t = 200;
    ms.submit(MemRequest::load(2, 9, 0)).unwrap();
    for cycle in t..t + 100 {
        let (resps, _) = ms.step(cycle);
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 2) {
            assert!(r.value.is_pointer(), "tag lost through memory");
            assert_eq!(r.value.pointer().unwrap(), ptr);
            return;
        }
    }
    panic!("load incomplete");
}

#[test]
fn ecc_double_error_returns_errval_and_event() {
    let mut ms = booted();
    let pa = ms.translate(8).unwrap();
    ms.poke_phys(pa, MemWord::new(Word::from_u64(0xFF)));
    ms.sdram_mut().inject_bit_flip(pa, 1);
    ms.sdram_mut().inject_bit_flip(pa, 2);
    ms.submit(MemRequest::load(1, 8, 0)).unwrap();
    for cycle in 0..100 {
        let (resps, events) = ms.step(cycle);
        for e in &events {
            assert_eq!(e.kind, MemEventKind::EccError);
        }
        if let Some(r) = resps.into_iter().find(|r| r.req.id == 1) {
            assert!(r.value.is_pointer());
            assert_eq!(r.value.pointer().unwrap().perm(), mm_isa::Perm::ErrVal);
            assert_eq!(ms.stats().ecc_events, 1);
            return;
        }
    }
    panic!("no ECC response");
}

#[test]
fn access_kind_and_helpers() {
    let r = MemRequest::load(1, 2, 3);
    assert_eq!(r.kind, AccessKind::Load);
    let s = MemRequest::store(1, 2, Word::from_u64(4), 3);
    assert_eq!(s.kind, AccessKind::Store);
    assert!(!s.data_ptr_tag);
}

#[test]
fn memsys_state_round_trips_mid_flight() {
    use mm_faults::{Dec, Enc};

    // Build up interesting state: a warm cache line, pending misses,
    // staged responses, and a raised event — then checkpoint mid-flight.
    let mut ms = booted();
    ms.submit(MemRequest::load(1, 8, 0)).unwrap();
    for cycle in 0..30 {
        let _ = ms.step(cycle);
    }
    ms.submit(MemRequest::store(2, 8, Word::from_u64(77), 0))
        .unwrap();
    ms.submit(MemRequest::load(3, 128, 0)).unwrap(); // miss in flight
    ms.submit(MemRequest::load(4, 9 * PAGE_WORDS, 0)).unwrap(); // LTLB miss event
    let _ = ms.step(30);
    let _ = ms.step(31);

    let mut e = Enc::default();
    ms.save_state(&mut e);
    let bytes = e.finish();

    let mut restored = MemorySystem::new(MemConfig::default());
    let mut d = Dec::new(&bytes);
    restored.load_state(&mut d).unwrap();
    assert_eq!(d.remaining(), 0);

    // Re-save must be byte-identical (covers every private field the
    // codec touches).
    let mut e2 = Enc::default();
    restored.save_state(&mut e2);
    assert_eq!(e2.finish(), bytes, "re-saved checkpoint differs");

    // Running both forward produces identical responses and events.
    for cycle in 32..200 {
        let (r1, v1) = ms.step(cycle);
        let (r2, v2) = restored.step(cycle);
        assert_eq!(r1, r2, "responses diverge at cycle {cycle}");
        assert_eq!(v1, v2, "events diverge at cycle {cycle}");
    }
    assert_eq!(ms.stats().responses, restored.stats().responses);
    assert!(ms.is_idle() && restored.is_idle());

    // A differently-configured target refuses the checkpoint.
    let mut wrong = MemorySystem::new(MemConfig {
        ltlb_entries: 8,
        ..MemConfig::default()
    });
    assert!(wrong.load_state(&mut Dec::new(&bytes)).is_err());
}
