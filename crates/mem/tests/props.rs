//! Property tests: the cached memory system never loses or invents data
//! relative to a flat reference memory, and SECDED handles all single and
//! double flips.

use mm_isa::op::{SyncPost, SyncPre};
use mm_isa::word::Word;
use mm_mem::lpt::Lpt;
use mm_mem::ltlb::{BlockStatus, LtlbEntry, PAGE_WORDS};
use mm_mem::memsys::{MemConfig, MemRequest, MemorySystem};
use mm_mem::secded;
use proptest::prelude::*;
use std::collections::HashMap;

/// Apply a random load/store sequence through the full pipeline and check
/// every load against a flat model.
fn run_sequence(ops: &[(bool, u64, u64)]) {
    let mut cfg = MemConfig::default();
    cfg.cache.words_per_bank = 64; // tiny cache: lots of evictions
    let mut ms = MemorySystem::new(cfg);
    let lpt = Lpt::new(4096, 64);
    ms.set_lpt(lpt);
    for vpn in 0..4 {
        let entry = LtlbEntry::uniform(vpn, 2 + vpn, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        assert!(ms.tlb_install(slot));
    }

    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut cycle: u64 = 0;
    let mut id: u64 = 0;

    for &(is_store, addr, value) in ops {
        let va = addr % (4 * PAGE_WORDS);
        id += 1;
        let req = if is_store {
            model.insert(va, value);
            MemRequest::store(id, va, Word::from_u64(value), 0)
        } else {
            MemRequest::load(id, va, 0)
        };
        // Submit (retrying on bank-full) and run to completion.
        let mut pending = Some(req);
        let mut done = false;
        let deadline = cycle + 500;
        while !done {
            assert!(cycle < deadline, "request {id} stuck");
            if let Some(r) = pending.take() {
                if let Err(back) = ms.submit(r) {
                    pending = Some(back);
                }
            }
            let (resps, events) = ms.step(cycle);
            assert!(events.is_empty(), "unexpected fault: {events:?}");
            for resp in resps {
                if resp.req.id == id {
                    if !is_store {
                        let expect = model.get(&va).copied().unwrap_or(0);
                        assert_eq!(
                            resp.value.bits(),
                            expect,
                            "load {id} at va {va} returned wrong data"
                        );
                    }
                    done = true;
                }
            }
            cycle += 1;
        }
    }

    // Every modelled word must also be visible through the backdoor.
    for (&va, &v) in &model {
        assert_eq!(ms.peek_va(va).unwrap().word.bits(), v, "backdoor mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_matches_flat_memory(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..4096, any::<u64>()),
            1..60,
        )
    ) {
        run_sequence(&ops);
    }

    /// SECDED corrects every single flip and flags every double flip, for
    /// arbitrary data.
    #[test]
    fn secded_single_and_double(data in any::<u64>(), a in 0u32..64, b in 0u32..64) {
        let check = secded::encode(data);
        let single = data ^ (1u64 << a);
        match secded::decode(single, check) {
            secded::Decoded::Corrected { data: fixed, .. } => prop_assert_eq!(fixed, data),
            other => return Err(TestCaseError::fail(format!("single flip: {other:?}"))),
        }
        prop_assume!(a != b);
        let double = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(secded::decode(double, check), secded::Decoded::DoubleError);
    }

    /// Synchronization bits round-trip through cache fills and evictions.
    #[test]
    fn sync_bits_survive_memory(addrs in prop::collection::vec(0u64..512, 1..20)) {
        let mut cfg = MemConfig::default();
        cfg.cache.words_per_bank = 64;
        let mut ms = MemorySystem::new(cfg);
        let lpt = Lpt::new(4096, 64);
        ms.set_lpt(lpt);
        let entry = LtlbEntry::uniform(0, 2, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        prop_assert!(ms.tlb_install(slot));

        for &va in &addrs {
            let mut w = ms.peek_va(va).unwrap();
            w.sync = true;
            prop_assert!(ms.poke_va(va, w));
        }
        // Evict everything.
        for va in (0..512).step_by(8) {
            ms.flush_block(va);
        }
        for &va in &addrs {
            prop_assert!(ms.peek_va(va).unwrap().sync, "sync bit lost at {va}");
        }
    }

    /// §2 full/empty semantics under arbitrary interleavings of
    /// synchronizing and plain accesses: every operation either completes
    /// and applies its postcondition, or sync-faults with the bit's true
    /// value and leaves the word — value *and* bit — untouched. A flat
    /// (value, full/empty) model decides which, per word, across cache
    /// fills and evictions.
    #[test]
    fn full_empty_bits_interleave_correctly(
        ops in prop::collection::vec(
            (any::<bool>(), 0u8..3, 0u8..3, 0u64..48, any::<u64>()),
            1..48,
        )
    ) {
        let mut cfg = MemConfig::default();
        cfg.cache.words_per_bank = 64; // tiny cache: lots of evictions
        let mut ms = MemorySystem::new(cfg);
        let lpt = Lpt::new(4096, 64);
        ms.set_lpt(lpt);
        let entry = LtlbEntry::uniform(0, 2, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        prop_assert!(ms.tlb_install(slot));

        // Words boot EMPTY with value 0 (matches `MemWord::new`).
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut cycle: u64 = 0;

        for (id, &(is_store, pre_s, post_s, va, value)) in ops.iter().enumerate() {
            let id = id as u64 + 1;
            let pre = [SyncPre::Any, SyncPre::Full, SyncPre::Empty][pre_s as usize];
            let post =
                [SyncPost::Unchanged, SyncPost::SetFull, SyncPost::SetEmpty][post_s as usize];
            let mut req = if is_store {
                MemRequest::store(id, va, Word::from_u64(value), 0)
            } else {
                MemRequest::load(id, va, 0)
            };
            req.pre = pre;
            req.post = post;

            let &(mval, msync) = model.get(&va).unwrap_or(&(0, false));
            let want_fault = match pre {
                SyncPre::Any => false,
                SyncPre::Full => !msync,
                SyncPre::Empty => msync,
            };

            let mut pending = Some(req);
            let deadline = cycle + 500;
            'op: loop {
                prop_assert!(cycle < deadline, "request {id} stuck");
                if let Some(r) = pending.take() {
                    if let Err(back) = ms.submit(r) {
                        pending = Some(back);
                    }
                }
                let (resps, events) = ms.step(cycle);
                cycle += 1;
                if let Some(ev) = events.first() {
                    prop_assert!(want_fault, "unexpected fault for {id}: {ev:?}");
                    prop_assert_eq!(ev.req.id, id, "fault names the wrong request");
                    match ev.kind {
                        mm_mem::memsys::MemEventKind::SyncFault { sync_was } => {
                            prop_assert_eq!(
                                sync_was, msync,
                                "fault reported the wrong bit value"
                            );
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "request {id}: wrong fault kind {other:?}"
                            )));
                        }
                    }
                    break 'op; // faulted op leaves the word untouched
                }
                if let Some(resp) = resps.first() {
                    prop_assert_eq!(resp.req.id, id);
                    prop_assert!(!want_fault, "request {id} should have sync-faulted");
                    if !is_store {
                        prop_assert_eq!(resp.value.bits(), mval, "load {id} wrong value");
                    }
                    let new_val = if is_store { value } else { mval };
                    let new_sync = match post {
                        SyncPost::Unchanged => msync,
                        SyncPost::SetFull => true,
                        SyncPost::SetEmpty => false,
                    };
                    model.insert(va, (new_val, new_sync));
                    break 'op;
                }
            }
        }

        // The backdoor agrees with the model on every touched word.
        for (&va, &(v, s)) in &model {
            let got = ms.peek_va(va).unwrap();
            prop_assert_eq!(got.word.bits(), v, "value mismatch at {}", va);
            prop_assert_eq!(got.sync, s, "full/empty mismatch at {}", va);
        }
    }
}
