//! Property tests: the cached memory system never loses or invents data
//! relative to a flat reference memory, and SECDED handles all single and
//! double flips.

use mm_isa::word::Word;
use mm_mem::lpt::Lpt;
use mm_mem::ltlb::{BlockStatus, LtlbEntry, PAGE_WORDS};
use mm_mem::memsys::{MemConfig, MemRequest, MemorySystem};
use mm_mem::secded;
use proptest::prelude::*;
use std::collections::HashMap;

/// Apply a random load/store sequence through the full pipeline and check
/// every load against a flat model.
fn run_sequence(ops: &[(bool, u64, u64)]) {
    let mut cfg = MemConfig::default();
    cfg.cache.words_per_bank = 64; // tiny cache: lots of evictions
    let mut ms = MemorySystem::new(cfg);
    let lpt = Lpt::new(4096, 64);
    ms.set_lpt(lpt);
    for vpn in 0..4 {
        let entry = LtlbEntry::uniform(vpn, 2 + vpn, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        assert!(ms.tlb_install(slot));
    }

    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut cycle: u64 = 0;
    let mut id: u64 = 0;

    for &(is_store, addr, value) in ops {
        let va = addr % (4 * PAGE_WORDS);
        id += 1;
        let req = if is_store {
            model.insert(va, value);
            MemRequest::store(id, va, Word::from_u64(value), 0)
        } else {
            MemRequest::load(id, va, 0)
        };
        // Submit (retrying on bank-full) and run to completion.
        let mut pending = Some(req);
        let mut done = false;
        let deadline = cycle + 500;
        while !done {
            assert!(cycle < deadline, "request {id} stuck");
            if let Some(r) = pending.take() {
                if let Err(back) = ms.submit(r) {
                    pending = Some(back);
                }
            }
            let (resps, events) = ms.step(cycle);
            assert!(events.is_empty(), "unexpected fault: {events:?}");
            for resp in resps {
                if resp.req.id == id {
                    if !is_store {
                        let expect = model.get(&va).copied().unwrap_or(0);
                        assert_eq!(
                            resp.value.bits(),
                            expect,
                            "load {id} at va {va} returned wrong data"
                        );
                    }
                    done = true;
                }
            }
            cycle += 1;
        }
    }

    // Every modelled word must also be visible through the backdoor.
    for (&va, &v) in &model {
        assert_eq!(ms.peek_va(va).unwrap().word.bits(), v, "backdoor mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_matches_flat_memory(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..4096, any::<u64>()),
            1..60,
        )
    ) {
        run_sequence(&ops);
    }

    /// SECDED corrects every single flip and flags every double flip, for
    /// arbitrary data.
    #[test]
    fn secded_single_and_double(data in any::<u64>(), a in 0u32..64, b in 0u32..64) {
        let check = secded::encode(data);
        let single = data ^ (1u64 << a);
        match secded::decode(single, check) {
            secded::Decoded::Corrected { data: fixed, .. } => prop_assert_eq!(fixed, data),
            other => return Err(TestCaseError::fail(format!("single flip: {other:?}"))),
        }
        prop_assume!(a != b);
        let double = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(secded::decode(double, check), secded::Decoded::DoubleError);
    }

    /// Synchronization bits round-trip through cache fills and evictions.
    #[test]
    fn sync_bits_survive_memory(addrs in prop::collection::vec(0u64..512, 1..20)) {
        let mut cfg = MemConfig::default();
        cfg.cache.words_per_bank = 64;
        let mut ms = MemorySystem::new(cfg);
        let lpt = Lpt::new(4096, 64);
        ms.set_lpt(lpt);
        let entry = LtlbEntry::uniform(0, 2, BlockStatus::ReadWrite, 0);
        let slot = lpt.insert(ms.sdram_mut(), &entry).unwrap();
        prop_assert!(ms.tlb_install(slot));

        for &va in &addrs {
            let mut w = ms.peek_va(va).unwrap();
            w.sync = true;
            prop_assert!(ms.poke_va(va, w));
        }
        // Evict everything.
        for va in (0..512).step_by(8) {
            ms.flush_block(va);
        }
        for &va in &addrs {
            prop_assert!(ms.peek_va(va).unwrap().sync, "sync bit lost at {va}");
        }
    }
}
