//! Coherence-stress scenario: the first genuinely coherence-bound
//! workload.
//!
//! Every node pair `(2k, 2k+1)` shares one 8-word block homed at the
//! even node. The even node owns word 0, the odd node word 1, and both
//! run the [`coherent_smooth`] kernel: read the partner's word, fold it
//! into a smoothed sum, publish the own word — all in the same block,
//! so every store demands exclusivity and every read re-fetches. The
//! block ping-pongs through the full §4.3 protocol (fetch-write,
//! invalidate, recall, writeback, grant) for the whole run; unlike the
//! weak-scaling scenario, *every* remote byte moves through coherence
//! messages rather than the LTLB-miss remote-access handlers.
//!
//! Each mesh runs under the serial engine and the parallel engine and
//! the two runs' [`MachineStats`] are diffed — protocol traffic is
//! cross-node by construction, so this is the sharded engine's hardest
//! determinism test.

use mm_core::machine::{MMachine, MachineConfig, MachineStats};
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_runtime::kernels::coherent_smooth;
use std::time::Instant;

/// Cycle budget for one coherence-stress run.
pub const RUN_LIMIT: u64 = 2_000_000;

/// One mesh's coherence-stress measurement.
#[derive(Debug, Clone)]
pub struct CoherencePoint {
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Node count.
    pub nodes: usize,
    /// Smoothing iterations per node.
    pub iters: u64,
    /// Cycles simulated (identical across engines when `stats_match`).
    pub cycles: u64,
    /// Serial-engine wall-clock milliseconds.
    pub serial_wall_ms: f64,
    /// Serial-engine simulated cycles per wall-clock second.
    pub serial_cycles_per_sec: f64,
    /// Worker threads the parallel run resolved to.
    pub parallel_workers: usize,
    /// Parallel-engine wall-clock milliseconds.
    pub parallel_wall_ms: f64,
    /// Parallel-engine simulated cycles per wall-clock second.
    pub parallel_cycles_per_sec: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// Did serial and parallel produce identical [`MachineStats`]?
    pub stats_match: bool,
    /// Coherence protocol packets that crossed the fabric.
    pub coh_packets: u64,
    /// Blocks granted by home handlers.
    pub block_fetches: u64,
    /// Sharer copies invalidated.
    pub invalidations: u64,
    /// Dirty blocks recalled and written back to their homes.
    pub writebacks: u64,
    /// Mean block-status miss latency: fault → faulted-access replay.
    pub miss_latency_avg: f64,
    /// Invalidations per thousand simulated cycles.
    pub invalidations_per_kcycle: f64,
}

/// Build the scenario: every pair's shared block is the first block of
/// the even node's home page; the odd node maps it coherently (all
/// blocks INVALID, §4.3 boot state for locally-cached remote pages).
///
/// # Panics
///
/// Panics if the mesh has an odd node count or a program fails to load.
#[must_use]
pub fn build_coherence_scenario(
    dims: (u8, u8, u8),
    iters: u64,
    workers: Option<usize>,
) -> MMachine {
    let mut cfg: MachineConfig = crate::scaling::scenario_config(dims);
    cfg.engine.workers = workers;
    let mut m = MMachine::build(cfg).expect("scenario config is valid");
    let n = m.node_count();
    assert!(
        n.is_multiple_of(2),
        "scenario pairs nodes; mesh must be even-sized"
    );
    let b = 0.25f64;
    for pair in 0..n / 2 {
        let (even, odd) = (2 * pair, 2 * pair + 1);
        let block_va = m.home_va(even, 0);
        m.map_coherent_page(odd, block_va);
        let ptr = m.home_ptr(even, 0);
        for (node, own, other) in [(even, 0usize, 1usize), (odd, 1, 0)] {
            let prog = coherent_smooth(own, other, iters);
            m.load_user_program(node, 0, &prog).expect("slot 0 loads");
            m.set_user_reg(node, 0, 0, Reg::Int(1), ptr);
            m.set_user_reg(node, 0, 0, Reg::Fp(15), Word::from_f64(b));
        }
    }
    m
}

/// Run one configured machine to halt and verify the result: for every
/// pair, the freshest copy of each node's word must equal `iters`.
fn run_checked(mut m: MMachine, iters: u64) -> (f64, MachineStats) {
    let t0 = Instant::now();
    m.run_until_halt(RUN_LIMIT)
        .expect("coherence scenario completes");
    let wall = t0.elapsed().as_secs_f64();
    m.run_cycles(256); // drain in-flight protocol messages
    assert!(
        m.faulted_threads().is_empty(),
        "scenario faulted: {:?}",
        m.faulted_threads()
    );
    let n = m.node_count();
    for pair in 0..n / 2 {
        let (even, odd) = (2 * pair, 2 * pair + 1);
        let base = m.home_va(even, 0);
        for off in [0u64, 1] {
            // The last writer's copy is authoritative; the partner may
            // hold a stale (invalidated) frame, so take the max of the
            // two local views.
            let a = m.node(even).mem.peek_va(base + off).expect("mapped").word;
            let b = m.node(odd).mem.peek_va(base + off).expect("mapped").word;
            let freshest = a.bits().max(b.bits());
            assert_eq!(
                freshest, iters,
                "pair {pair} word {off}: freshest copy {freshest} != {iters}"
            );
        }
    }
    (wall, m.stats())
}

/// Run the coherence-stress scenario on one mesh under the serial and
/// the parallel engine, verify both results, and diff their stats.
///
/// # Panics
///
/// Panics if a run exceeds [`RUN_LIMIT`] cycles, a thread faults, or a
/// pair's shared words end with the wrong values.
#[must_use]
pub fn run_coherence(dims: (u8, u8, u8), iters: u64, workers: Option<usize>) -> CoherencePoint {
    let (serial_wall, serial_stats) =
        run_checked(build_coherence_scenario(dims, iters, Some(1)), iters);
    let parallel = build_coherence_scenario(dims, iters, workers);
    let parallel_workers = parallel.workers();
    let nodes = parallel.node_count();
    let (parallel_wall, parallel_stats) = run_checked(parallel, iters);
    let coh = serial_stats.coherence;
    #[allow(clippy::cast_precision_loss)]
    CoherencePoint {
        dims,
        nodes,
        iters,
        cycles: serial_stats.cycles,
        serial_wall_ms: serial_wall * 1e3,
        serial_cycles_per_sec: serial_stats.cycles as f64 / serial_wall,
        parallel_workers,
        parallel_wall_ms: parallel_wall * 1e3,
        parallel_cycles_per_sec: parallel_stats.cycles as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        stats_match: serial_stats == parallel_stats,
        coh_packets: serial_stats.fabric.coh_packets,
        block_fetches: coh.block_fetches,
        invalidations: coh.invalidations,
        writebacks: coh.writebacks,
        miss_latency_avg: coh.fetch_latency_cycles as f64 / coh.fetch_replays.max(1) as f64,
        invalidations_per_kcycle: coh.invalidations as f64 * 1e3
            / serial_stats.cycles.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_scenario_is_coherence_bound_and_engine_invariant() {
        let p = run_coherence((2, 2, 1), 8, Some(2));
        assert_eq!(p.nodes, 4);
        assert!(p.stats_match, "serial and parallel engines disagreed");
        assert!(p.coh_packets > 0, "no protocol traffic crossed the fabric");
        assert!(p.block_fetches > 0);
        assert!(p.invalidations > 0, "no ping-pong happened");
        assert!(p.miss_latency_avg > 0.0);
    }
}
