//! Weak-scaling scenario for the quiescence-aware cycle engine.
//!
//! Every node pair `(2k, 2k+1)` — one-hop x-neighbours — runs the
//! paper's two communication idioms simultaneously:
//!
//! * **Synchronizing ping-pong** (§2/§4.1): the even node SENDs a value
//!   into its partner's flag word with the store-and-set-full DIP; each
//!   side spins on `ld.fe`, whose failed preconditions become
//!   memory-synchronizing faults that the coherence firmware retries
//!   after a backoff — long idle stretches between short bursts.
//! * **Remote stores** (Fig. 7): each node fires a burst of plain
//!   stores at its partner's home page, exercising the LTLB-miss
//!   handler, the GTLB and the message fabric.
//!
//! Per-pair work is constant, so total simulated cycles stay roughly
//! flat from 2×1×1 to 8×8×8 (512 nodes) — the interesting number is
//! wall-clock cycles/sec as the mesh grows, which is exactly what the
//! engine's quiescent-node skipping is for.
//!
//! Every mesh size runs twice — serial engine vs. parallel engine —
//! and the two runs' [`MachineStats`] are diffed; the parallel engine
//! is only allowed to change wall-clock, never results. The
//! [`busy_traffic_comparison`] scenario is the parallel engine's
//! showcase: all nodes computing and messaging every cycle, where
//! quiescence-skipping cannot help and host threads must.

use mm_core::machine::{MMachine, MachineConfig, MachineStats};
use mm_isa::assemble;
use mm_isa::instr::Program;
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_telemetry::TelemetryConfig;
use std::sync::Arc;
use std::time::Instant;

/// Ping-pong round trips (and remote stores) per node pair.
pub const ROUNDS: u64 = 4;

/// Cycle budget for one weak-scaling run.
pub const RUN_LIMIT: u64 = 500_000;

/// Warm-up cycles before the allocation window opens. Long enough for
/// boot, first faults, first LTLB/GTLB misses, and every queue and
/// buffer to reach its high-water mark — `VecDeque` growth in the
/// event queues is the last transient and it is done well before this.
pub const ALLOC_WARM_CYCLES: u64 = 20_000;

/// Width of the steady-state allocation window. The busy scenario's
/// loop period is a few hundred cycles, so 5 000 cycles covers many
/// full compute/store/message rounds on every node.
pub const ALLOC_WINDOW_CYCLES: u64 = 5_000;

/// One mesh size's measurement: the same scenario under the serial and
/// the parallel engine.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Node count.
    pub nodes: usize,
    /// Cycles simulated (to halt + drain).
    pub cycles: u64,
    /// Serial-engine wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Serial-engine simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Worker threads the parallel run resolved to (1 = this mesh is
    /// too small to shard, or the host has one core).
    pub parallel_workers: usize,
    /// Parallel-engine wall-clock milliseconds.
    pub parallel_wall_ms: f64,
    /// Parallel-engine cycles per wall-clock second.
    pub parallel_cycles_per_sec: f64,
    /// `parallel_cycles_per_sec / cycles_per_sec`.
    pub parallel_speedup: f64,
    /// Did serial and parallel produce identical [`MachineStats`]?
    pub stats_match: bool,
    /// Instructions issued machine-wide.
    pub instructions: u64,
    /// Messages sent machine-wide.
    pub messages: u64,
}

/// Naive-vs-engine comparison on an idle-heavy workload.
#[derive(Debug, Clone)]
pub struct IdleHeavyResult {
    /// Fixed simulation horizon (cycles).
    pub horizon: u64,
    /// Dense-loop wall-clock milliseconds.
    pub naive_wall_ms: f64,
    /// Engine wall-clock milliseconds.
    pub engine_wall_ms: f64,
    /// Dense-loop cycles/sec.
    pub naive_cps: f64,
    /// Engine cycles/sec.
    pub engine_cps: f64,
    /// `engine_cps / naive_cps`.
    pub speedup: f64,
    /// Did both paths produce identical [`MachineStats`]?
    pub stats_match: bool,
}

/// The scenario's machine configuration: default node timing, but small
/// per-node SDRAM and page counts so a 512-node mesh fits in memory.
#[must_use]
pub fn scenario_config(dims: (u8, u8, u8)) -> MachineConfig {
    let nodes = u64::from(dims.0) * u64::from(dims.1) * u64::from(dims.2);
    let mut cfg = MachineConfig::with_dims(dims.0, dims.1, dims.2);
    cfg.local_pages = 2;
    // Direct-mapped LPT slots (vpn < 2·local_pages·N everywhere), so the
    // miss handler's linear probe never wraps the table.
    cfg.lpt_slots = (4 * nodes).max(64);
    // Shrink per-node SDRAM to what the boot layout needs (size-aligned
    // LPT, four local page frames, coherence-frame headroom) so a
    // 512-node mesh fits comfortably in host memory.
    let (_, lpt_end) = mm_runtime::image::lpt_layout(cfg.lpt_slots);
    let capacity = (lpt_end + 16 * 512).next_power_of_two().max(1 << 14);
    cfg.node.mem.sdram.capacity_words = capacity;
    // Keep any coherence frames inside the shrunken SDRAM.
    cfg.coherence.frame_base_ppn = capacity / 512 - 8;
    cfg.trace = false; // timelines would grow with the mesh
    cfg
}

/// The ping (even-node) and pong (odd-node) programs plus the
/// remote-store burst, shared via `Arc` across the whole mesh.
struct Workload {
    ping: Arc<Program>,
    pong: Arc<Program>,
    store: Arc<Program>,
}

fn workload(rounds: u64) -> Workload {
    let ping = assemble(&format!(
        "loop:\n\
         \tadd r5, #1, r5\n\
         \tmov r5, mc1\n\
         \tsend r10, r11, #1\n\
         \tld.fe [r1], r6\n\
         \teq r5, #{rounds}, gcc1\n\
         \tbrf gcc1, loop\n\
         \thalt\n"
    ))
    .expect("ping assembles");
    let pong = assemble(&format!(
        "loop:\n\
         \tld.fe [r1], r6\n\
         \tmov r6, mc1\n\
         \tsend r10, r11, #1\n\
         \teq r6, #{rounds}, gcc1\n\
         \tbrf gcc1, loop\n\
         \thalt\n"
    ))
    .expect("pong assembles");
    let mut store_src = String::new();
    for k in 0..rounds {
        store_src.push_str(&format!("st r2, [r8+#{k}]\n"));
    }
    store_src.push_str("halt\n");
    let store = assemble(&store_src).expect("store burst assembles");
    Workload {
        ping: Arc::new(ping),
        pong: Arc::new(pong),
        store: Arc::new(store),
    }
}

/// Build the machine and load the scenario onto every node pair.
///
/// # Panics
///
/// Panics if the mesh has an odd node count or a program fails to load
/// (both are scenario bugs).
#[must_use]
pub fn build_scenario(dims: (u8, u8, u8), rounds: u64) -> MMachine {
    build_scenario_with(dims, rounds, Some(1))
}

/// [`build_scenario`] pinned to a worker count (`None` = auto-detect).
///
/// # Panics
///
/// As [`build_scenario`].
#[must_use]
pub fn build_scenario_with(dims: (u8, u8, u8), rounds: u64, workers: Option<usize>) -> MMachine {
    let mut cfg = scenario_config(dims);
    cfg.engine.workers = workers;
    let mut m = MMachine::build(cfg).expect("scenario config is valid");
    let n = m.node_count();
    assert!(
        n.is_multiple_of(2),
        "scenario pairs nodes; mesh must be even-sized"
    );
    let w = workload(rounds);
    let sync_dip = m.image().write_sync_dip;
    for i in 0..n {
        let partner = i ^ 1; // the x-neighbour (linear index is x-fastest)
                             // Slot 0: the synchronizing ping-pong.
        let prog = if i % 2 == 0 { &w.ping } else { &w.pong };
        m.load_user_program(i, 0, prog).expect("slot 0 loads");
        let own_flag = m.home_va(i, 1);
        let partner_flag = m.home_va(partner, 1);
        let own_ptr = m
            .make_ptr(mm_isa::Perm::ReadWrite, 0, own_flag)
            .expect("flag ptr");
        let partner_ptr = m
            .make_ptr(mm_isa::Perm::ReadWrite, 0, partner_flag)
            .expect("flag ptr");
        m.set_user_reg(i, 0, 0, Reg::Int(1), own_ptr);
        m.set_user_reg(i, 0, 0, Reg::Int(10), partner_ptr);
        m.set_user_reg(i, 0, 0, Reg::Int(11), sync_dip);
        // Slot 1: the remote-store burst at the partner's home page.
        m.load_user_program(i, 1, &w.store).expect("slot 1 loads");
        m.set_user_reg(i, 0, 1, Reg::Int(8), m.home_ptr(partner, 0));
        m.set_user_reg(i, 0, 1, Reg::Int(2), Word::from_u64(0xC0DE + i as u64));
    }
    m
}

/// Run one configured scenario machine to halt, returning wall seconds
/// and final stats.
fn timed_run(mut m: MMachine) -> (f64, MachineStats) {
    let t0 = Instant::now();
    m.run_until_halt(RUN_LIMIT)
        .expect("scaling scenario completes");
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        m.faulted_threads().is_empty(),
        "scenario faulted: {:?}",
        m.faulted_threads()
    );
    (wall, m.stats())
}

/// Run the weak-scaling scenario on one mesh size under the serial
/// engine *and* the parallel engine (`workers = None` auto-detects),
/// measure both and diff their stats.
///
/// # Panics
///
/// Panics if the scenario fails to complete within [`RUN_LIMIT`] cycles
/// or any thread faults.
#[must_use]
pub fn run_mesh(dims: (u8, u8, u8), rounds: u64, workers: Option<usize>) -> ScalingPoint {
    let (serial_wall, serial_stats) = timed_run(build_scenario_with(dims, rounds, Some(1)));
    let parallel = build_scenario_with(dims, rounds, workers);
    let parallel_workers = parallel.workers();
    let nodes = parallel.node_count();
    let (parallel_wall, parallel_stats) = timed_run(parallel);
    #[allow(clippy::cast_precision_loss)]
    let cycles_per_sec = serial_stats.cycles as f64 / serial_wall;
    #[allow(clippy::cast_precision_loss)]
    let parallel_cycles_per_sec = parallel_stats.cycles as f64 / parallel_wall;
    ScalingPoint {
        dims,
        nodes,
        cycles: serial_stats.cycles,
        wall_ms: serial_wall * 1e3,
        cycles_per_sec,
        parallel_workers,
        parallel_wall_ms: parallel_wall * 1e3,
        parallel_cycles_per_sec,
        parallel_speedup: parallel_cycles_per_sec / cycles_per_sec,
        stats_match: serial_stats == parallel_stats,
        instructions: serial_stats.instructions,
        messages: serial_stats.messages,
    }
}

/// Serial-vs-parallel comparison on the busy-traffic scenario.
#[derive(Debug, Clone)]
pub struct BusyTrafficResult {
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Node count.
    pub nodes: usize,
    /// Compute/store iterations per node.
    pub iters: u64,
    /// Cycles simulated (identical in both runs when `stats_match`).
    pub cycles: u64,
    /// Worker threads the parallel run resolved to.
    pub workers: usize,
    /// Serial-engine wall-clock milliseconds.
    pub serial_wall_ms: f64,
    /// Serial-engine simulated cycles per wall-clock second — the
    /// headline number for the cycle kernel's busy-path cost.
    pub serial_cycles_per_sec: f64,
    /// Parallel-engine wall-clock milliseconds.
    pub parallel_wall_ms: f64,
    /// Parallel-engine cycles per wall-clock second.
    pub parallel_cycles_per_sec: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// Did both engines produce identical [`MachineStats`]?
    pub stats_match: bool,
    /// Issue-path hit rate of the serial run (instructions issued per
    /// issue-stage candidate probed; see `MachinePerf`).
    pub issue_hit_rate: f64,
    /// Heap allocations per simulated cycle in the *steady state*, as
    /// counted by [`crate::alloc_probe`] over a
    /// [`ALLOC_WINDOW_CYCLES`]-cycle window opened after
    /// [`ALLOC_WARM_CYCLES`] warm-up cycles on a non-halting copy of
    /// the scenario — 0.0 when the running binary has not installed
    /// the probe allocator. This is the same window the `zero_alloc`
    /// integration test pins to exactly zero, so with the probe
    /// installed this field is expected to be exactly 0.0: startup
    /// transients (boot, first faults, queue growth to high-water) are
    /// excluded by the warm-up.
    pub allocs_per_cycle: f64,
    /// Serial wall-clock milliseconds with telemetry sampling enabled
    /// at the default epoch (ring only, no stream sink) — the best of
    /// three runs at 8× the committed row's iteration count,
    /// interleaved with telemetry-off runs of the same length (the
    /// longer window pushes the wall clock above the shared container's
    /// scheduler noise).
    pub telemetry_wall_ms: f64,
    /// Serial cycles/sec with telemetry enabled (on the 8×-length
    /// overhead runs) — the observability layer's overhead budget says
    /// this stays within 2% of the telemetry-off rate.
    pub telemetry_cycles_per_sec: f64,
    /// `(best telemetry-on wall / best telemetry-off wall − 1) × 100`
    /// over three interleaved off/on pairs of 8×-length runs — the
    /// percent of wall time telemetry added: positive when telemetry
    /// costs time, negative is residual run-to-run noise.
    pub telemetry_overhead_pct: f64,
    /// Did the telemetry-on runs produce [`MachineStats`] identical to
    /// the telemetry-off runs of the same length? Telemetry only reads
    /// counters, so anything but `true` is a bug.
    pub telemetry_stats_match: bool,
    /// Epoch samples the telemetry run collected (flush included).
    pub telemetry_epochs: usize,
}

/// Build the busy-traffic scenario: every node runs `iters` iterations
/// of a dependent integer chain plus one remote store to its partner's
/// home page — all nodes awake essentially every cycle, so quiescence
/// skipping cannot help and the node phase dominates. This is the
/// workload host-level parallelism is for.
///
/// # Panics
///
/// Panics if the mesh has an odd node count or a program fails to load.
#[must_use]
pub fn build_busy_scenario(dims: (u8, u8, u8), iters: u64, workers: Option<usize>) -> MMachine {
    build_busy_scenario_telemetry(dims, iters, workers, TelemetryConfig::default())
}

/// [`build_busy_scenario`] with a telemetry configuration — the
/// overhead leg, the `--gate` stream and the CI telemetry smoke all
/// run the busy scenario with sampling on.
///
/// # Panics
///
/// As [`build_busy_scenario`].
#[must_use]
pub fn build_busy_scenario_telemetry(
    dims: (u8, u8, u8),
    iters: u64,
    workers: Option<usize>,
    telemetry: TelemetryConfig,
) -> MMachine {
    build_busy_scenario_full(dims, iters, workers, telemetry, None)
}

/// [`build_busy_scenario_telemetry`] with an optional fault campaign
/// armed — the fault-injection benches, `scaling --fault-campaign` and
/// `mmctl run --faults` all build their machines here so every consumer
/// runs the identical workload.
///
/// # Panics
///
/// As [`build_busy_scenario`].
#[must_use]
pub fn build_busy_scenario_full(
    dims: (u8, u8, u8),
    iters: u64,
    workers: Option<usize>,
    telemetry: TelemetryConfig,
    faults: Option<mm_faults::FaultPlanConfig>,
) -> MMachine {
    let mut cfg = scenario_config(dims);
    cfg.engine.workers = workers;
    cfg.telemetry = telemetry;
    cfg.faults = faults;
    let mut m = MMachine::build(cfg).expect("scenario config is valid");
    let n = m.node_count();
    assert!(
        n.is_multiple_of(2),
        "scenario pairs nodes; mesh must be even-sized"
    );
    let busy = Arc::new(
        assemble(&format!(
            "loop:\n\
             \tadd r5, #1, r5\n\
             \tadd r6, r5, r6\n\
             \tadd r7, r6, r7\n\
             \tst r5, [r8]\n\
             \teq r5, #{iters}, gcc1\n\
             \tbrf gcc1, loop\n\
             \thalt\n"
        ))
        .expect("busy program assembles"),
    );
    for i in 0..n {
        let partner = i ^ 1;
        m.load_user_program(i, 0, &busy).expect("slot 0 loads");
        m.set_user_reg(i, 0, 0, Reg::Int(8), m.home_ptr(partner, 0));
    }
    m
}

/// Run the busy-traffic scenario serial then parallel and compare.
///
/// # Panics
///
/// As [`build_busy_scenario`]; also if either run exceeds
/// [`RUN_LIMIT`] cycles.
#[must_use]
pub fn busy_traffic_comparison(
    dims: (u8, u8, u8),
    iters: u64,
    workers: Option<usize>,
) -> BusyTrafficResult {
    // Serial leg, run by hand (not through `timed_run`) so the machine
    // survives for the perf counters.
    let mut serial = build_busy_scenario(dims, iters, Some(1));
    let t0 = Instant::now();
    serial
        .run_until_halt(RUN_LIMIT)
        .expect("busy scenario completes");
    let serial_wall = t0.elapsed().as_secs_f64();
    assert!(
        serial.faulted_threads().is_empty(),
        "busy scenario faulted: {:?}",
        serial.faulted_threads()
    );
    let serial_stats = serial.stats();
    let perf = serial.perf();

    // Steady-state allocation window, on a copy of the scenario with an
    // iteration count large enough that it cannot halt inside the
    // window. Same warm-up/window semantics as the `zero_alloc` test.
    let mut steady = build_busy_scenario(dims, 1_000_000, Some(1));
    steady.run_cycles(ALLOC_WARM_CYCLES);
    let allocs_before = crate::alloc_probe::allocations();
    steady.run_cycles(ALLOC_WINDOW_CYCLES);
    let alloc_delta = crate::alloc_probe::allocations() - allocs_before;

    // Telemetry-overhead leg: the same scenario with the sampler on at
    // the default epoch (ring only). Stats must stay identical —
    // telemetry only reads counters — and the wall-clock delta is the
    // observability layer's overhead budget. The committed busy row is
    // only ~1100 cycles (~0.2 s of wall), where a shared container's
    // scheduler noise swamps a sub-1% effect, so the overhead pairs run
    // the same scenario at 8× the iteration count: bursty host
    // contention averages out over the longer window, interleaving the
    // off/on runs cancels slow drift, and since stolen timeslices only
    // ever slow a run down, the ratio of *minimum* walls over eight
    // pairs estimates the true cost floor (measured spread on the CI
    // class of host is ±15%, so a handful of samples per side is the
    // minimum that reliably reaches the floor).
    let overhead_iters = iters * 8;
    let mut tele_stats = MachineStats::default();
    let mut off_stats = MachineStats::default();
    let mut tele_epochs = 0;
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..8 {
        let mut off = build_busy_scenario(dims, overhead_iters, Some(1));
        let t0 = Instant::now();
        off.run_until_halt(RUN_LIMIT)
            .expect("busy scenario completes");
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        off_stats = off.stats();

        let mut on = build_busy_scenario_telemetry(
            dims,
            overhead_iters,
            Some(1),
            TelemetryConfig::enabled(),
        );
        let t0 = Instant::now();
        on.run_until_halt(RUN_LIMIT)
            .expect("busy scenario completes with telemetry on");
        on.telemetry_flush();
        best_on = best_on.min(t0.elapsed().as_secs_f64());
        tele_stats = on.stats();
        tele_epochs = on.telemetry().map_or(0, |t| t.ring().len());
    }

    let parallel = build_busy_scenario(dims, iters, workers);
    let resolved = parallel.workers();
    let nodes = parallel.node_count();
    let (parallel_wall, parallel_stats) = timed_run(parallel);
    #[allow(clippy::cast_precision_loss)]
    BusyTrafficResult {
        dims,
        nodes,
        iters,
        cycles: serial_stats.cycles,
        workers: resolved,
        serial_wall_ms: serial_wall * 1e3,
        serial_cycles_per_sec: serial_stats.cycles as f64 / serial_wall,
        parallel_wall_ms: parallel_wall * 1e3,
        parallel_cycles_per_sec: parallel_stats.cycles as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        stats_match: serial_stats == parallel_stats,
        issue_hit_rate: perf.issue_hit_rate(),
        allocs_per_cycle: alloc_delta as f64 / ALLOC_WINDOW_CYCLES as f64,
        telemetry_wall_ms: best_on * 1e3,
        telemetry_cycles_per_sec: tele_stats.cycles as f64 / best_on,
        telemetry_overhead_pct: (best_on / best_off - 1.0) * 100.0,
        telemetry_stats_match: tele_stats == off_stats,
        telemetry_epochs: tele_epochs,
    }
}

/// The host's advertised parallelism (1 when unknown) — recorded in
/// `BENCH_scaling.json` so parallel-speedup columns can be interpreted.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Run the 2×1×1 scenario to a *fixed* horizon twice — dense loop vs.
/// engine — so the workload's long post-completion idle tail shows the
/// quiescence win, and verify both paths agree on the stats.
#[must_use]
pub fn idle_heavy_comparison(horizon: u64, rounds: u64) -> IdleHeavyResult {
    let run = |engine: bool| -> (f64, MachineStats) {
        let mut m = build_scenario((2, 1, 1), rounds);
        let t0 = Instant::now();
        if engine {
            m.run_cycles(horizon);
        } else {
            for _ in 0..horizon {
                m.naive_step();
            }
        }
        (t0.elapsed().as_secs_f64(), m.stats())
    };
    let (naive_s, naive_stats) = run(false);
    let (engine_s, engine_stats) = run(true);
    #[allow(clippy::cast_precision_loss)]
    let (naive_cps, engine_cps) = (horizon as f64 / naive_s, horizon as f64 / engine_s);
    IdleHeavyResult {
        horizon,
        naive_wall_ms: naive_s * 1e3,
        engine_wall_ms: engine_s * 1e3,
        naive_cps,
        engine_cps,
        speedup: engine_cps / naive_cps,
        stats_match: naive_stats == engine_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_scenario_completes() {
        let p = run_mesh((2, 2, 1), 2, Some(2));
        assert_eq!(p.nodes, 4);
        assert_eq!(p.parallel_workers, 2);
        assert!(p.cycles > 0 && p.cycles < RUN_LIMIT);
        assert!(p.messages > 0, "scenario must exercise the fabric");
        assert!(p.stats_match, "serial and parallel engines disagreed");
    }

    #[test]
    fn idle_heavy_paths_agree() {
        let r = idle_heavy_comparison(5_000, 2);
        assert!(r.stats_match, "dense loop and engine disagreed");
    }

    #[test]
    fn busy_traffic_engines_agree() {
        let r = busy_traffic_comparison((2, 2, 1), 16, Some(2));
        assert_eq!(r.workers, 2);
        assert!(r.cycles > 0 && r.cycles < RUN_LIMIT);
        assert!(r.stats_match, "serial and parallel engines disagreed");
        assert!(
            r.telemetry_stats_match,
            "telemetry sampling changed the simulation"
        );
        assert!(
            r.telemetry_epochs >= 1,
            "flush must close at least one epoch"
        );
    }
}
