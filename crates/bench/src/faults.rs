//! Fault-injection harnesses: the seeded fault campaign
//! (`scaling --fault-campaign`, CI's fault smoke) and the
//! crash-recovery scenario (watchdog trip → checkpoint restore →
//! completed run).
//!
//! Both ride the busy-traffic scenario so the machinery under stress —
//! checksum NACKs, pristine-copy retransmission, SECDED scrubbing,
//! stall windows — is exercised by the same workload every other bench
//! row runs.

use crate::scaling::{build_busy_scenario_full, scenario_config, RUN_LIMIT};
use mm_core::machine::{FaultReport, MMachine};
use mm_core::MachineError;
use mm_faults::{DramFaultConfig, FaultPlanConfig, LinkFaultConfig, StallFaultConfig};
use mm_isa::{assemble, reg::Reg};
use mm_telemetry::TelemetryConfig;
use std::sync::Arc;

/// Cycles granted after halt so retransmit chains (retry backoff ×
/// retry cap) can drain before counters are read.
const DRAIN_CYCLES: u64 = 50_000;

/// The standard seeded campaign: a link window corrupting/dropping/
/// delaying a good fraction of all user packets, a couple of scheduled
/// DRAM upsets (one correctable, one double-bit), and a transient stall
/// window on node 0.
#[must_use]
pub fn campaign_plan(seed: u64, nodes: u32) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        dram: vec![
            DramFaultConfig {
                flips: 2,
                double_every: 0,
                window: (500, 4_000),
                addr: (0, 1 << 12),
            },
            DramFaultConfig {
                flips: 1,
                double_every: 1,
                window: (1_000, 3_000),
                addr: (0, 1 << 12),
            },
        ],
        links: vec![LinkFaultConfig {
            window: (0, 1_000_000),
            corrupt_pct: 20,
            drop_pct: 10,
            delay_pct: 15,
            delay_cycles: 9,
        }],
        stalls: vec![StallFaultConfig {
            node: nodes.saturating_sub(1),
            window: (300, 900),
        }],
    }
}

/// One row of the fault-campaign table.
#[derive(Debug)]
pub struct FaultCampaignPoint {
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Node count.
    pub nodes: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Final cycle of the serial run.
    pub cycles: u64,
    /// What the campaign did (serial run; the parallel run must agree).
    pub report: FaultReport,
    /// Checksum NACKs raised by receivers.
    pub crc_nacks: u64,
    /// Duplicate retransmissions dropped by the sequence window.
    pub dup_drops: u64,
    /// SECDED single-bit corrections.
    pub ecc_corrected: u64,
    /// Uncorrectable double-bit errors surfaced as ErrVal.
    pub ecc_double_errors: u64,
    /// Serial and parallel runs produced identical `MachineStats` and
    /// identical fault reports.
    pub stats_match: bool,
    /// The run halted (every user thread finished despite the faults)
    /// with no thread left in a faulted state.
    pub completed: bool,
}

fn run_campaign_once(
    dims: (u8, u8, u8),
    iters: u64,
    workers: Option<usize>,
    plan: &FaultPlanConfig,
) -> MMachine {
    let mut m = build_busy_scenario_full(
        dims,
        iters,
        workers,
        TelemetryConfig::default(),
        Some(plan.clone()),
    );
    m.run_until_halt(RUN_LIMIT)
        .expect("faulted busy scenario still completes");
    m.run_cycles(DRAIN_CYCLES);
    m
}

/// Run the seeded campaign on `dims`, serial and parallel, and verify
/// the two agree bit-for-bit on stats and on what the campaign did.
///
/// # Panics
///
/// Panics if either run exceeds [`RUN_LIMIT`] cycles.
#[must_use]
pub fn run_fault_campaign(
    dims: (u8, u8, u8),
    iters: u64,
    workers: usize,
    seed: u64,
) -> FaultCampaignPoint {
    let nodes = usize::from(dims.0) * usize::from(dims.1) * usize::from(dims.2);
    #[allow(clippy::cast_possible_truncation)]
    let plan = campaign_plan(seed, nodes as u32);

    let serial = run_campaign_once(dims, iters, Some(1), &plan);
    let parallel = run_campaign_once(dims, iters, Some(workers), &plan);

    let stats_match = serial.stats() == parallel.stats()
        && serial.fault_report() == parallel.fault_report()
        && serial.counter_snapshot().crc_nacks == parallel.counter_snapshot().crc_nacks;
    let completed = serial.faulted_threads().is_empty() && parallel.faulted_threads().is_empty();
    let snap = serial.counter_snapshot();
    FaultCampaignPoint {
        dims,
        nodes,
        seed,
        cycles: serial.cycle(),
        report: serial.fault_report().expect("campaign armed"),
        crc_nacks: snap.crc_nacks,
        dup_drops: snap.dup_drops,
        ecc_corrected: snap.ecc_corrected,
        ecc_double_errors: snap.ecc_double_errors,
        stats_match,
        completed,
    }
}

/// Outcome of the crash-recovery scenario.
#[derive(Debug)]
pub struct CrashRecoveryPoint {
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Cycle at which the periodic checkpoint was taken.
    pub checkpoint_at: u64,
    /// Checkpoint size in bytes.
    pub checkpoint_bytes: usize,
    /// Epoch boundary at which the watchdog aborted the hung run.
    pub tripped_at: u64,
    /// The watchdog captured a diagnostic document before aborting.
    pub diagnostic_captured: bool,
    /// The restored run completed within [`RUN_LIMIT`] cycles.
    pub recovered: bool,
    /// The restored run's stats equal a reference run that never
    /// crashed (same plan, patient watchdog from the start).
    pub stats_match: bool,
}

/// Build the crash-recovery workload: one node grinding a finite
/// compute + local-store loop, the rest of the mesh idle. With the
/// grinding node as the machine's *only* progress source, a stall
/// window on it hangs the whole machine — exactly the hang signature
/// the watchdog exists for. (Remote-store workloads keep the §4.1
/// resend machinery carrying packets through a stall, which is real
/// forward progress and rightly keeps the watchdog quiet.)
fn build_recovery_scenario(
    dims: (u8, u8, u8),
    iters: u64,
    workers: usize,
    plan: &FaultPlanConfig,
) -> MMachine {
    let mut cfg = scenario_config(dims);
    cfg.engine.workers = Some(workers);
    cfg.faults = Some(plan.clone());
    let mut m = MMachine::build(cfg).expect("scenario config is valid");
    let grind = Arc::new(
        assemble(&format!(
            "loop:\n\
             \tadd r5, #1, r5\n\
             \tst r5, [r1]\n\
             \teq r5, #{iters}, gcc1\n\
             \tbrf gcc1, loop\n\
             \thalt\n"
        ))
        .expect("grind program assembles"),
    );
    m.load_user_program(0, 0, &grind).expect("slot 0 loads");
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(0, 0));
    m
}

/// The crash-recovery scenario: a long transient stall freezes the
/// only working node past the watchdog's patience; the watchdog aborts
/// with a diagnostic; the operator restores the last periodic
/// checkpoint with a raised patience and the run completes —
/// bit-identical to a run that never crashed.
///
/// # Panics
///
/// Panics if any leg violates the scenario's expectations (no trip, a
/// failed restore, a run that exceeds [`RUN_LIMIT`]).
#[must_use]
pub fn run_crash_recovery(dims: (u8, u8, u8), iters: u64, workers: usize) -> CrashRecoveryPoint {
    // A stall long enough to exhaust a 3-epoch × 512-cycle watchdog,
    // short enough that a patient run completes.
    let plan = FaultPlanConfig {
        seed: 0x00C0_FFEE,
        dram: vec![],
        links: vec![],
        stalls: vec![StallFaultConfig {
            node: 0,
            window: (2_000, 40_000),
        }],
    };
    // The production run: checkpoint at cycle 1000, hang, trip.
    let mut prod = build_recovery_scenario(dims, iters, workers, &plan);
    prod.set_watchdog(3, 512);
    let checkpoint_at = 1_000;
    prod.run_cycles(checkpoint_at);
    let ckpt = prod.checkpoint();
    let tripped_at = match prod.run_until_halt(RUN_LIMIT) {
        Err(MachineError::WatchdogTripped { at, .. }) => at,
        other => panic!("expected a watchdog trip, got {other:?}"),
    };
    let diagnostic_captured = prod.last_diagnostic().is_some();

    // Recovery: restore the checkpoint into a fresh build with the
    // watchdog's patience raised past the stall window (here: disabled,
    // the most patient setting).
    let mut recovered = build_recovery_scenario(dims, iters, workers, &plan);
    recovered.set_watchdog(0, 0);
    recovered
        .restore(&ckpt)
        .expect("periodic checkpoint restores");
    let recovered_ok = recovered.run_until_halt(RUN_LIMIT).is_ok();
    recovered.run_cycles(DRAIN_CYCLES);

    // Reference: the same plan with a patient watchdog from the start.
    let mut reference = build_recovery_scenario(dims, iters, workers, &plan);
    reference
        .run_until_halt(RUN_LIMIT)
        .expect("patient run completes");
    reference.run_cycles(DRAIN_CYCLES);

    CrashRecoveryPoint {
        dims,
        checkpoint_at,
        checkpoint_bytes: ckpt.len(),
        tripped_at,
        diagnostic_captured,
        recovered: recovered_ok,
        stats_match: recovered.stats() == reference.stats()
            && recovered.fault_report() == reference.fault_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_smoke_is_deterministic_and_recovers() {
        let p = run_fault_campaign((2, 2, 1), 24, 2, 7);
        assert!(p.stats_match, "serial and parallel runs diverged: {p:?}");
        assert!(p.completed, "campaign left faulted threads: {p:?}");
        assert!(
            p.report.packets_corrupted + p.report.packets_dropped > 0,
            "campaign faulted nothing: {p:?}"
        );
        assert!(p.crc_nacks > 0, "no checksum NACK raised: {p:?}");
        assert!(p.report.retransmits > 0, "nothing retransmitted: {p:?}");
    }

    #[test]
    fn crash_recovery_round_trip() {
        let p = run_crash_recovery((2, 1, 1), 1_000, 2);
        assert!(p.diagnostic_captured, "no diagnostic on trip: {p:?}");
        assert!(p.tripped_at > p.checkpoint_at);
        assert!(p.recovered, "restored run did not complete: {p:?}");
        assert!(p.stats_match, "recovered run diverged: {p:?}");
    }
}
