//! Synthetic fabric traffic generator: the three classic patterns
//! (uniform random-ish round-robin, hotspot, transpose) at configurable
//! injection rates, charting saturation throughput and the
//! return-to-sender backoff the M-Machine uses instead of deadlocking
//! (§4.2: a message that cannot be sunk is returned to its sender and
//! re-injected after a backoff).
//!
//! Each row runs the same generator under the serial and the parallel
//! engine and diffs their [`MachineStats`] — the traffic sweep doubles
//! as a fabric-determinism check at injection rates the coherence
//! workloads never reach.

use mm_core::machine::{MMachine, MachineConfig, MachineStats};
use mm_isa::pointer::Perm;
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_mem::MemWord;
use mm_runtime::workloads::{traffic_node, traffic_sink_off, TrafficDest};
use std::time::Instant;

/// Mesh the traffic sweep runs on (transpose needs the 2×2 face).
pub const TRAFFIC_DIMS: (u8, u8, u8) = (2, 2, 1);
const NODES: usize = 4;

/// Messages injected per node per row.
pub const TRAFFIC_COUNT: u64 = 64;

/// Cycle budget for one traffic run.
pub const RUN_LIMIT: u64 = 2_000_000;

/// The injection pattern of one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Round-robin over all nodes, offset by the sender — the uniform
    /// load every fabric chart starts from.
    Uniform,
    /// Everyone hammers node 0 — the saturation / backoff case.
    Hotspot,
    /// (x, y) → (y, x) on the 2×2 face — a permutation with no
    /// endpoint contention, isolating link contention.
    Transpose,
}

impl TrafficPattern {
    /// The BENCH row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::Uniform => "uniform",
            TrafficPattern::Hotspot => "hotspot",
            TrafficPattern::Transpose => "transpose",
        }
    }

    fn dest(self, me: usize) -> TrafficDest {
        match self {
            TrafficPattern::Uniform => TrafficDest::RoundRobin { start: me },
            TrafficPattern::Hotspot => TrafficDest::Fixed(0),
            TrafficPattern::Transpose => {
                let (x, y) = (me % 2, me / 2);
                TrafficDest::Fixed(y + 2 * x)
            }
        }
    }
}

/// The sweep: uniform at three injection gaps (rate = 1/(gap+1) per
/// issue opportunity), plus full-rate hotspot and transpose.
pub const TRAFFIC_SWEEP: [(TrafficPattern, u32); 5] = [
    (TrafficPattern::Uniform, 0),
    (TrafficPattern::Uniform, 2),
    (TrafficPattern::Uniform, 8),
    (TrafficPattern::Hotspot, 0),
    (TrafficPattern::Transpose, 1),
];

/// One traffic row's measurement.
#[derive(Debug, Clone)]
pub struct TrafficPoint {
    /// Injection pattern.
    pub pattern: TrafficPattern,
    /// Idle cycles between injections.
    pub gap: u32,
    /// Node count.
    pub nodes: usize,
    /// Messages injected per node.
    pub count: u64,
    /// Cycles to drain the pattern.
    pub cycles: u64,
    /// Wall-clock milliseconds (parallel engine).
    pub wall_ms: f64,
    /// Messages injected machine-wide (first sends only).
    pub injected: u64,
    /// Messages received machine-wide (includes re-injections).
    pub delivered: u64,
    /// Messages bounced back to their sender (§4.2 backoff).
    pub returned: u64,
    /// Cycles a sender stalled on exhausted credit.
    pub credit_stalls: u64,
    /// Deliveries per thousand simulated cycles — the saturation chart's
    /// y-axis.
    pub delivered_per_kcycle: f64,
    /// Did serial and parallel produce identical [`MachineStats`]?
    pub stats_match: bool,
}

fn poke(m: &mut MMachine, node: usize, va: u64, w: Word) {
    assert!(
        m.node_mut(node).mem.poke_va(va, MemWord::new(w)),
        "poke at unmapped va {va:#x} on node {node}"
    );
}

/// Build one traffic row's machine.
///
/// # Panics
///
/// Panics if a program fails to load (layout bug).
#[must_use]
pub fn build_traffic_scenario(
    pattern: TrafficPattern,
    gap: u32,
    count: u64,
    workers: Option<usize>,
) -> MMachine {
    let mut cfg = MachineConfig::with_dims(TRAFFIC_DIMS.0, TRAFFIC_DIMS.1, TRAFFIC_DIMS.2);
    cfg.engine.workers = workers;
    cfg.trace = false;
    let mut m = MMachine::build(cfg).expect("valid config");
    for me in 0..NODES {
        let prog = traffic_node(pattern.dest(me), NODES, gap, count);
        m.load_user_program(me, 0, &prog).unwrap();
        for d in 0..NODES {
            let sink = m.home_va(d, 0) + traffic_sink_off(me);
            let cap = m.make_ptr(Perm::ReadWrite, 0, sink).expect("sink cap");
            let slot = m.home_va(me, 1) + d as u64;
            poke(&mut m, me, slot, cap);
        }
        m.set_user_reg(me, 0, 0, Reg::Int(1), m.home_ptr(me, 1));
        m.set_user_reg(me, 0, 0, Reg::Int(11), m.image().write_dip);
    }
    m
}

struct TrafficRun {
    wall: f64,
    stats: MachineStats,
    injected: u64,
    delivered: u64,
    returned: u64,
    credit_stalls: u64,
}

fn run_one(pattern: TrafficPattern, gap: u32, count: u64, workers: Option<usize>) -> TrafficRun {
    let mut m = build_traffic_scenario(pattern, gap, count, workers);
    let t0 = Instant::now();
    m.run_until_halt(RUN_LIMIT).expect("traffic drains");
    let wall = t0.elapsed().as_secs_f64();
    m.run_cycles(256); // drain in-flight bounces
    assert!(
        m.faulted_threads().is_empty(),
        "{}: faulted threads {:?}",
        pattern.name(),
        m.faulted_threads()
    );
    let iface =
        |f: fn(&mm_net::IfaceStats) -> u64| (0..NODES).map(|i| f(&m.node(i).net.stats())).sum();
    let injected: u64 = iface(|s| s.sent);
    assert_eq!(
        injected,
        NODES as u64 * count,
        "{}: not every SEND injected",
        pattern.name()
    );
    let stats = m.stats();
    assert_eq!(
        stats.coherence.unknown_events,
        0,
        "{}: dropped event records",
        pattern.name()
    );
    TrafficRun {
        wall,
        stats,
        injected,
        delivered: iface(|s| s.received),
        returned: iface(|s| s.returned_here),
        credit_stalls: iface(|s| s.credit_stalls),
    }
}

/// Run one traffic row under both engines and diff their stats.
///
/// # Panics
///
/// Panics if the pattern fails to drain within [`RUN_LIMIT`] cycles, a
/// thread faults, or a SEND never injected.
#[must_use]
pub fn run_traffic(
    pattern: TrafficPattern,
    gap: u32,
    count: u64,
    workers: Option<usize>,
) -> TrafficPoint {
    let serial = run_one(pattern, gap, count, Some(1));
    let parallel = run_one(pattern, gap, count, workers);
    #[allow(clippy::cast_precision_loss)]
    TrafficPoint {
        pattern,
        gap,
        nodes: NODES,
        count,
        cycles: serial.stats.cycles,
        wall_ms: parallel.wall * 1e3,
        injected: serial.injected,
        delivered: serial.delivered,
        returned: serial.returned,
        credit_stalls: serial.credit_stalls,
        delivered_per_kcycle: serial.delivered as f64 / (serial.stats.cycles as f64 / 1e3),
        stats_match: serial.stats == parallel.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_saturates_and_uniform_does_not() {
        let hot = run_traffic(TrafficPattern::Hotspot, 0, 16, Some(2));
        assert!(hot.stats_match, "hotspot engines disagreed");
        assert_eq!(hot.injected, NODES as u64 * 16);
        assert!(hot.delivered > 0);
        let uni = run_traffic(TrafficPattern::Uniform, 8, 16, Some(2));
        assert!(uni.stats_match, "uniform engines disagreed");
        // A paced uniform pattern must not bounce: the fabric is below
        // saturation, so backoff counters stay at zero.
        assert_eq!(uni.returned, 0, "uniform at gap 8 bounced");
    }
}
