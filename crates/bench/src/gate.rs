//! CI soft-gate logic: fresh measurements vs. the committed baseline.
//!
//! The `scaling --gate` subcommand replaces what used to be two
//! copy-pasted bash/python steps in the workflow. It re-measures the
//! busy-traffic row (reading the result off the telemetry JSONL stream
//! the run produces) and the weak-scaling endpoints, compares both
//! against the committed `BENCH_scaling.json`, and emits:
//!
//! * one human line per check,
//! * GitHub `::error::` / `::warning::` annotations on breach,
//! * a machine-readable `BENCH_gate.json` summary,
//! * a process exit code (non-zero only on a hard fail).
//!
//! Thresholds are the ones the bash steps used: absolute cycles/sec
//! tracks runner speed, so the busy row only *fails* below 0.70× of
//! baseline (a magnitude that has always meant a real cycle-kernel
//! regression) and warns below 0.90×; the weak-scaling small/large
//! ratio is a same-host quotient, failing above 1.50× of the committed
//! ratio and warning above 1.20×.

use mm_telemetry::json::{parse, JsonValue};
use std::fmt::Write as _;

/// Busy-row hard-fail threshold: fresh/baseline cycles/sec below this
/// fails the build.
pub const BUSY_FAIL_BELOW: f64 = 0.70;

/// Busy-row warn threshold.
pub const BUSY_WARN_BELOW: f64 = 0.90;

/// Weak-scaling hard-fail threshold: fresh ratio / baseline ratio
/// above this fails the build.
pub const SCALING_FAIL_ABOVE: f64 = 1.50;

/// Weak-scaling warn threshold.
pub const SCALING_WARN_ABOVE: f64 = 1.20;

/// Outcome of one gate check, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GateStatus {
    /// Within noise of the committed baseline.
    Pass,
    /// Outside noise; surfaced as a `::warning::` annotation.
    Warn,
    /// A real regression; fails the build.
    Fail,
}

impl GateStatus {
    /// Lower-case label used in `BENCH_gate.json`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GateStatus::Pass => "pass",
            GateStatus::Warn => "warn",
            GateStatus::Fail => "fail",
        }
    }
}

/// One named comparison against the committed baseline.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Check name (stable key in `BENCH_gate.json`).
    pub name: &'static str,
    /// Freshly measured value.
    pub measured: f64,
    /// Committed baseline value.
    pub baseline: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Verdict.
    pub status: GateStatus,
    /// Human-readable explanation (also the annotation body).
    pub detail: String,
}

impl GateCheck {
    /// The GitHub workflow annotation for this check, if any.
    #[must_use]
    pub fn annotation(&self) -> Option<String> {
        match self.status {
            GateStatus::Pass => None,
            GateStatus::Warn => Some(format!("::warning::{}", self.detail)),
            GateStatus::Fail => Some(format!("::error::{}", self.detail)),
        }
    }
}

/// The busy-traffic check: fresh serial cycles/sec (as summed off the
/// telemetry stream) vs. the committed row.
#[must_use]
pub fn busy_gate(measured: f64, baseline: f64) -> GateCheck {
    let ratio = measured / baseline;
    let (status, detail) = if ratio < BUSY_FAIL_BELOW {
        (
            GateStatus::Fail,
            format!(
                "busy-row cycles/sec regressed >{:.0}% vs committed baseline \
                 ({ratio:.2}x) — cycle-kernel regression",
                (1.0 - BUSY_FAIL_BELOW) * 100.0
            ),
        )
    } else if ratio < BUSY_WARN_BELOW {
        (
            GateStatus::Warn,
            format!(
                "busy-row cycles/sec {ratio:.2}x of committed baseline \
                 (>{:.0}% down; check if runner noise or regression)",
                (1.0 - BUSY_WARN_BELOW) * 100.0
            ),
        )
    } else {
        (
            GateStatus::Pass,
            format!("busy-row cycles/sec {ratio:.2}x of committed baseline"),
        )
    };
    GateCheck {
        name: "busy_cycles_per_sec",
        measured,
        baseline,
        ratio,
        status,
        detail,
    }
}

/// The weak-scaling check: fresh small/large cycles/sec ratio vs. the
/// committed ratio. Growth means per-node-cycle cost is no longer flat
/// across mesh sizes — the cliff the SoA node pool flattened.
#[must_use]
pub fn weak_scaling_gate(measured: f64, baseline: f64) -> GateCheck {
    let ratio = measured / baseline;
    let (status, detail) = if ratio > SCALING_FAIL_ABOVE {
        (
            GateStatus::Fail,
            format!(
                "weak-scaling ratio regressed >{:.0}% vs committed baseline \
                 ({measured:.1}x vs {baseline:.1}x) — per-node-cycle cost is \
                 no longer flat across mesh sizes",
                (SCALING_FAIL_ABOVE - 1.0) * 100.0
            ),
        )
    } else if ratio > SCALING_WARN_ABOVE {
        (
            GateStatus::Warn,
            format!(
                "weak-scaling ratio {measured:.1}x vs committed {baseline:.1}x \
                 (>{:.0}% up; check if runner noise or regression)",
                (SCALING_WARN_ABOVE - 1.0) * 100.0
            ),
        )
    } else {
        (
            GateStatus::Pass,
            format!("weak-scaling ratio {measured:.1}x vs committed {baseline:.1}x"),
        )
    };
    GateCheck {
        name: "weak_scaling_ratio",
        measured,
        baseline,
        ratio,
        status,
        detail,
    }
}

/// The most severe status among `checks` (`Pass` when empty).
#[must_use]
pub fn overall(checks: &[GateCheck]) -> GateStatus {
    checks
        .iter()
        .map(|c| c.status)
        .max()
        .unwrap_or(GateStatus::Pass)
}

/// Process exit code for the gate: non-zero only on a hard fail.
#[must_use]
pub fn exit_code(checks: &[GateCheck]) -> i32 {
    i32::from(overall(checks) == GateStatus::Fail)
}

/// The baseline numbers the gate needs out of the committed
/// `BENCH_scaling.json`.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// `busy_traffic.serial_cycles_per_sec`.
    pub busy_cycles_per_sec: f64,
    /// 2×1×1 mesh serial cycles/sec.
    pub small_cycles_per_sec: f64,
    /// 8×8×8 mesh serial cycles/sec.
    pub large_cycles_per_sec: f64,
}

impl Baseline {
    /// Committed small/large weak-scaling ratio.
    #[must_use]
    pub fn weak_scaling_ratio(&self) -> f64 {
        self.small_cycles_per_sec / self.large_cycles_per_sec
    }
}

fn mesh_cps(meshes: &[JsonValue], dims: &str) -> Result<f64, String> {
    meshes
        .iter()
        .find(|m| m.get("dims").and_then(JsonValue::as_str) == Some(dims))
        .and_then(|m| m.get("cycles_per_sec").and_then(JsonValue::as_f64))
        .ok_or_else(|| format!("baseline has no {dims} mesh row"))
}

/// Parse the committed `BENCH_scaling.json` into the gate's baseline.
///
/// # Errors
///
/// Malformed JSON or a missing row/field.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v = parse(text).map_err(|e| format!("baseline JSON: {e}"))?;
    let busy = v
        .get("busy_traffic")
        .and_then(|b| b.get("serial_cycles_per_sec"))
        .and_then(JsonValue::as_f64)
        .ok_or("baseline has no busy_traffic.serial_cycles_per_sec")?;
    let meshes = v
        .get("meshes")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no meshes array")?;
    Ok(Baseline {
        busy_cycles_per_sec: busy,
        small_cycles_per_sec: mesh_cps(meshes, "2x1x1")?,
        large_cycles_per_sec: mesh_cps(meshes, "8x8x8")?,
    })
}

/// Totals summed over a telemetry JSONL stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamTotals {
    /// Epoch records in the stream.
    pub epochs: usize,
    /// Simulated cycles covered.
    pub cycles: u64,
    /// Wall nanoseconds covered.
    pub wall_ns: u64,
}

impl StreamTotals {
    /// Whole-stream simulated cycles per wall second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cycles as f64 * 1e9 / self.wall_ns as f64
            }
        }
    }
}

/// Sum cycles and wall time over a telemetry JSONL stream — the gate's
/// fresh busy-row measurement is read off the stream, not off a
/// separate stopwatch.
///
/// # Errors
///
/// An empty stream or a malformed line.
pub fn stream_totals(jsonl: &str) -> Result<StreamTotals, String> {
    let mut t = StreamTotals {
        epochs: 0,
        cycles: 0,
        wall_ns: 0,
    };
    for (k, line) in jsonl.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("stream line {}: {e}", k + 1))?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stream line {} has no {name}", k + 1))
        };
        let (start, end) = (field("start_cycle")?, field("end_cycle")?);
        t.cycles += end.saturating_sub(start);
        t.wall_ns += field("wall_ns")?;
        t.epochs += 1;
    }
    if t.epochs == 0 {
        return Err("telemetry stream is empty".into());
    }
    Ok(t)
}

/// Render the checks as the `BENCH_gate.json` document.
#[must_use]
pub fn summary_json(checks: &[GateCheck], telemetry_epochs: usize, host_cores: usize) -> String {
    let mut out = String::from("{\n  \"gate\": [\n");
    for (k, c) in checks.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"measured\": {:.4}, \"baseline\": {:.4}, \
             \"ratio\": {:.4}, \"status\": \"{}\"}}{}",
            c.name,
            c.measured,
            c.baseline,
            c.ratio,
            c.status.label(),
            if k + 1 == checks.len() { "" } else { "," }
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"status\": \"{}\",\n  \"telemetry_epochs\": {telemetry_epochs},\n  \
         \"host_cores\": {host_cores}\n}}\n",
        overall(checks).label()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_thresholds() {
        assert_eq!(busy_gate(100.0, 100.0).status, GateStatus::Pass);
        assert_eq!(busy_gate(95.0, 100.0).status, GateStatus::Pass);
        assert_eq!(busy_gate(80.0, 100.0).status, GateStatus::Warn);
        assert_eq!(busy_gate(50.0, 100.0).status, GateStatus::Fail);
        // Faster than baseline is a pass, never a warn.
        assert_eq!(busy_gate(300.0, 100.0).status, GateStatus::Pass);
    }

    #[test]
    fn weak_scaling_thresholds() {
        assert_eq!(weak_scaling_gate(250.0, 260.0).status, GateStatus::Pass);
        assert_eq!(weak_scaling_gate(260.0, 200.0).status, GateStatus::Warn);
        assert_eq!(weak_scaling_gate(320.0, 200.0).status, GateStatus::Fail);
        // A *better* (smaller) ratio is a pass.
        assert_eq!(weak_scaling_gate(100.0, 200.0).status, GateStatus::Pass);
    }

    #[test]
    fn annotations_and_exit_code() {
        let pass = busy_gate(100.0, 100.0);
        let warn = busy_gate(80.0, 100.0);
        let fail = weak_scaling_gate(400.0, 200.0);
        assert!(pass.annotation().is_none());
        assert!(warn.annotation().unwrap().starts_with("::warning::"));
        assert!(fail.annotation().unwrap().starts_with("::error::"));
        assert_eq!(exit_code(std::slice::from_ref(&pass)), 0);
        assert_eq!(exit_code(&[pass.clone(), warn.clone()]), 0);
        assert_eq!(exit_code(&[pass, warn, fail]), 1);
    }

    #[test]
    fn baseline_parses_committed_shape() {
        let text = r#"{
          "busy_traffic": {"dims": "8x8x8", "serial_cycles_per_sec": 5072},
          "meshes": [
            {"dims": "2x1x1", "cycles_per_sec": 1795348},
            {"dims": "8x8x8", "cycles_per_sec": 6833}
          ]
        }"#;
        let b = parse_baseline(text).unwrap();
        assert!((b.busy_cycles_per_sec - 5072.0).abs() < 1e-9);
        assert!((b.weak_scaling_ratio() - 1_795_348.0 / 6833.0).abs() < 1e-6);
        assert!(parse_baseline("{}").is_err());
    }

    #[test]
    fn stream_totals_sum_epochs() {
        let jsonl = "{\"start_cycle\":0,\"end_cycle\":4096,\"wall_ns\":1000}\n\
                     {\"start_cycle\":4096,\"end_cycle\":8192,\"wall_ns\":3000}\n";
        let t = stream_totals(jsonl).unwrap();
        assert_eq!(t.epochs, 2);
        assert_eq!(t.cycles, 8192);
        assert_eq!(t.wall_ns, 4000);
        assert!((t.cycles_per_sec() - 8192.0 * 1e9 / 4000.0).abs() < 1e-6);
        assert!(stream_totals("").is_err());
        assert!(stream_totals("not json\n").is_err());
    }

    #[test]
    fn summary_json_is_valid_json() {
        let checks = [busy_gate(85.0, 100.0), weak_scaling_gate(160.0, 100.0)];
        let s = summary_json(&checks, 7, 4);
        let v = parse(&s).expect("summary parses");
        assert_eq!(v.get("status").unwrap().as_str(), Some("fail"));
        let gate = v.get("gate").unwrap().as_array().unwrap();
        assert_eq!(gate.len(), 2);
        assert_eq!(gate[0].get("status").unwrap().as_str(), Some("warn"));
        assert_eq!(v.get("telemetry_epochs").unwrap().as_u64(), Some(7));
    }
}
