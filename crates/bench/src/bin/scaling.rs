//! Weak-scaling driver for the quiescence-aware cycle engine.
//!
//! ```text
//! cargo run -p mm-bench --release --bin scaling             # 2×1×1 … 8×8×8
//! cargo run -p mm-bench --release --bin scaling -- --smoke  # CI: 2×2×1 only
//! ```
//!
//! Prints cycles simulated, wall-clock time and cycles/sec for each
//! mesh size, compares the engine against the dense `naive_step` loop
//! on an idle-heavy workload, and records everything in
//! `BENCH_scaling.json`.

use mm_bench::scaling::{idle_heavy_comparison, run_mesh, IdleHeavyResult, ScalingPoint, ROUNDS};
use std::fmt::Write as _;

/// Full sweep: 2 → 512 nodes, doubling one dimension at a time.
const MESHES: &[(u8, u8, u8)] = &[
    (2, 1, 1),
    (2, 2, 1),
    (2, 2, 2),
    (4, 2, 2),
    (4, 4, 2),
    (4, 4, 4),
    (8, 4, 4),
    (8, 8, 4),
    (8, 8, 8),
];

/// The CI smoke subset (the 2×2×1 mesh the workflow checks).
const SMOKE_MESHES: &[(u8, u8, u8)] = &[(2, 2, 1)];

fn json_points(points: &[ScalingPoint]) -> String {
    let mut out = String::from("  \"meshes\": [\n");
    for (k, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"dims\": \"{}x{}x{}\", \"nodes\": {}, \"cycles\": {}, \"wall_ms\": {:.3}, \
             \"cycles_per_sec\": {:.0}, \"instructions\": {}, \"messages\": {}}}{}",
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.nodes,
            p.cycles,
            p.wall_ms,
            p.cycles_per_sec,
            p.instructions,
            p.messages,
            if k + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("  ]");
    out
}

fn json_idle(r: &IdleHeavyResult) -> String {
    format!(
        "  \"idle_heavy\": {{\"horizon_cycles\": {}, \"naive_wall_ms\": {:.3}, \
         \"engine_wall_ms\": {:.3}, \"naive_cycles_per_sec\": {:.0}, \
         \"engine_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \"stats_match\": {}}}",
        r.horizon,
        r.naive_wall_ms,
        r.engine_wall_ms,
        r.naive_cps,
        r.engine_cps,
        r.speedup,
        r.stats_match
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let meshes = if smoke { SMOKE_MESHES } else { MESHES };
    let horizon = if smoke { 10_000 } else { 60_000 };

    println!("M-Machine weak scaling — remote-store + synchronizing ping-pong, {ROUNDS} rounds/pair\n");
    println!(
        "{:<8} {:>6} {:>9} {:>10} {:>14}",
        "mesh", "nodes", "cycles", "wall(ms)", "cycles/sec"
    );
    let mut points = Vec::new();
    for &dims in meshes {
        let p = run_mesh(dims, ROUNDS);
        println!(
            "{:<8} {:>6} {:>9} {:>10.2} {:>14.0}",
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            p.nodes,
            p.cycles,
            p.wall_ms,
            p.cycles_per_sec
        );
        points.push(p);
    }

    println!("\n== idle-heavy 2x1x1, fixed {horizon}-cycle horizon: dense loop vs engine ==");
    let idle = idle_heavy_comparison(horizon, ROUNDS);
    println!(
        "naive : {:>10.2} ms  {:>14.0} cycles/sec",
        idle.naive_wall_ms, idle.naive_cps
    );
    println!(
        "engine: {:>10.2} ms  {:>14.0} cycles/sec",
        idle.engine_wall_ms, idle.engine_cps
    );
    println!(
        "speedup: {:.1}x  (identical MachineStats: {})",
        idle.speedup, idle.stats_match
    );
    assert!(idle.stats_match, "engine diverged from the dense loop");

    let json = format!(
        "{{\n  \"scenario\": \"weak-scaling remote-store + synchronizing ping-pong\",\n  \
         \"rounds_per_pair\": {ROUNDS},\n{},\n{}\n}}\n",
        json_points(&points),
        json_idle(&idle)
    );
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("\nwrote BENCH_scaling.json");
}
