//! Weak-scaling driver for the quiescence-aware cycle engine and its
//! parallel sharding.
//!
//! ```text
//! cargo run -p mm-bench --release --bin scaling              # 2×1×1 … 8×8×8
//! cargo run -p mm-bench --release --bin scaling -- --smoke   # CI: 2×2×1 only
//! cargo run -p mm-bench --release --bin scaling -- --gate    # CI: telemetry-driven soft gates
//! cargo run -p mm-bench --release --bin scaling -- --workers 2
//! cargo run -p mm-bench --release --bin scaling -- --smoke --telemetry --epoch 64
//! ```
//!
//! Each mesh runs under the serial engine and the parallel engine
//! (`--workers N` pins the pool; default is `max(2, host cores)`),
//! asserting the two produce identical stats. The busy-traffic section
//! is the parallel engine's headline: all nodes awake every cycle, so
//! the quiescence win is zero and any speedup is host parallelism.
//! Everything lands in `BENCH_scaling.json`.
//!
//! `--gate` is CI's perf soft gate: it re-measures the busy 8×8×8 row
//! with telemetry streaming (the fresh cycles/sec is summed off the
//! JSONL stream, not a separate stopwatch) plus the weak-scaling
//! endpoints, compares both against the committed `BENCH_scaling.json`
//! (override with `--baseline <path>`), writes `BENCH_gate.json`, and
//! exits non-zero only on a hard fail.
//!
//! `--telemetry` makes the busy leg also run with a streaming sampler,
//! writing one JSONL record per epoch to `--telemetry-out` (default
//! `telemetry.jsonl`) at `--epoch` cycles per epoch (default 4096).

use mm_bench::coherence::{run_coherence, CoherencePoint};
use mm_bench::faults::{run_crash_recovery, run_fault_campaign};
use mm_bench::gate;
use mm_bench::scaling::{
    build_busy_scenario_telemetry, busy_traffic_comparison, host_cores, idle_heavy_comparison,
    run_mesh, BusyTrafficResult, IdleHeavyResult, ScalingPoint, ROUNDS, RUN_LIMIT,
};
use mm_bench::traffic::{run_traffic, TrafficPoint, TRAFFIC_COUNT, TRAFFIC_SWEEP};
use mm_bench::workloads::{run_workload, WorkloadKind, WorkloadPoint};
use mm_telemetry::TelemetryConfig;
use std::fmt::Write as _;

/// Count heap allocations so the busy-traffic row can report
/// allocations-per-cycle (the zero-allocation kernel's tracking number).
#[global_allocator]
static ALLOC: mm_bench::alloc_probe::CountingAlloc = mm_bench::alloc_probe::CountingAlloc;

/// Full sweep: 2 → 512 nodes, doubling one dimension at a time.
const MESHES: &[(u8, u8, u8)] = &[
    (2, 1, 1),
    (2, 2, 1),
    (2, 2, 2),
    (4, 2, 2),
    (4, 4, 2),
    (4, 4, 4),
    (8, 4, 4),
    (8, 8, 4),
    (8, 8, 8),
];

/// The CI smoke subset (the 2×2×1 mesh the workflow checks).
const SMOKE_MESHES: &[(u8, u8, u8)] = &[(2, 2, 1)];

/// Coherence-stress meshes for the full sweep (§4.3 protocol over the
/// fabric; every pair ping-pongs one shared block).
const COHERENCE_MESHES: &[(u8, u8, u8)] = &[(2, 1, 1), (2, 2, 1), (2, 2, 2), (4, 2, 2)];

/// Interlocked smoothing iterations per node in the coherence scenario.
const COHERENCE_ITERS: u64 = 64;

fn json_points(points: &[ScalingPoint]) -> String {
    let mut out = String::from("  \"meshes\": [\n");
    for (k, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"dims\": \"{}x{}x{}\", \"nodes\": {}, \"cycles\": {}, \"wall_ms\": {:.3}, \
             \"cycles_per_sec\": {:.0}, \"parallel_workers\": {}, \"parallel_wall_ms\": {:.3}, \
             \"parallel_cycles_per_sec\": {:.0}, \"parallel_speedup\": {:.2}, \
             \"stats_match\": {}, \"instructions\": {}, \"messages\": {}}}{}",
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.nodes,
            p.cycles,
            p.wall_ms,
            p.cycles_per_sec,
            p.parallel_workers,
            p.parallel_wall_ms,
            p.parallel_cycles_per_sec,
            p.parallel_speedup,
            p.stats_match,
            p.instructions,
            p.messages,
            if k + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("  ]");
    out
}

fn json_idle(r: &IdleHeavyResult) -> String {
    format!(
        "  \"idle_heavy\": {{\"horizon_cycles\": {}, \"naive_wall_ms\": {:.3}, \
         \"engine_wall_ms\": {:.3}, \"naive_cycles_per_sec\": {:.0}, \
         \"engine_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \"stats_match\": {}}}",
        r.horizon,
        r.naive_wall_ms,
        r.engine_wall_ms,
        r.naive_cps,
        r.engine_cps,
        r.speedup,
        r.stats_match
    )
}

fn json_busy(r: &BusyTrafficResult) -> String {
    format!(
        "  \"busy_traffic\": {{\"dims\": \"{}x{}x{}\", \"nodes\": {}, \"iters\": {}, \
         \"cycles\": {}, \"workers\": {}, \"serial_wall_ms\": {:.3}, \
         \"serial_cycles_per_sec\": {:.0}, \"parallel_wall_ms\": {:.3}, \
         \"parallel_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \"stats_match\": {}, \
         \"issue_hit_rate\": {:.3}, \"allocs_per_cycle\": {:.2}, \
         \"telemetry_wall_ms\": {:.3}, \"telemetry_cycles_per_sec\": {:.0}, \
         \"telemetry_overhead_pct\": {:.2}, \"telemetry_stats_match\": {}, \
         \"telemetry_epochs\": {}}}",
        r.dims.0,
        r.dims.1,
        r.dims.2,
        r.nodes,
        r.iters,
        r.cycles,
        r.workers,
        r.serial_wall_ms,
        r.serial_cycles_per_sec,
        r.parallel_wall_ms,
        r.parallel_cycles_per_sec,
        r.speedup,
        r.stats_match,
        r.issue_hit_rate,
        r.allocs_per_cycle,
        r.telemetry_wall_ms,
        r.telemetry_cycles_per_sec,
        r.telemetry_overhead_pct,
        r.telemetry_stats_match,
        r.telemetry_epochs
    )
}

fn json_coherence(points: &[CoherencePoint]) -> String {
    let mut out = String::from("  \"coherence\": [\n");
    for (k, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"dims\": \"{}x{}x{}\", \"nodes\": {}, \"iters\": {}, \"cycles\": {}, \
             \"serial_wall_ms\": {:.3}, \"serial_cycles_per_sec\": {:.0}, \
             \"parallel_workers\": {}, \"parallel_wall_ms\": {:.3}, \
             \"parallel_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"stats_match\": {}, \"coh_packets\": {}, \"block_fetches\": {}, \
             \"invalidations\": {}, \"writebacks\": {}, \"miss_latency_avg\": {:.1}, \
             \"invalidations_per_kcycle\": {:.2}}}{}",
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.nodes,
            p.iters,
            p.cycles,
            p.serial_wall_ms,
            p.serial_cycles_per_sec,
            p.parallel_workers,
            p.parallel_wall_ms,
            p.parallel_cycles_per_sec,
            p.speedup,
            p.stats_match,
            p.coh_packets,
            p.block_fetches,
            p.invalidations,
            p.writebacks,
            p.miss_latency_avg,
            p.invalidations_per_kcycle,
            if k + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("  ]");
    out
}

fn json_workloads(points: &[WorkloadPoint]) -> String {
    let mut out = String::from("  \"workloads\": [\n");
    for (k, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"dims\": \"{}x{}x{}\", \"nodes\": {}, \"cycles\": {}, \
             \"serial_wall_ms\": {:.3}, \"serial_cycles_per_sec\": {:.0}, \
             \"parallel_workers\": {}, \"parallel_wall_ms\": {:.3}, \
             \"parallel_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"stats_match\": {}, \"messages\": {}, \"protected_calls\": {}, \
             \"sync_retries\": {}}}{}",
            p.kind.name(),
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.nodes,
            p.cycles,
            p.serial_wall_ms,
            p.serial_cycles_per_sec,
            p.parallel_workers,
            p.parallel_wall_ms,
            p.parallel_cycles_per_sec,
            p.speedup,
            p.stats_match,
            p.messages,
            p.protected_calls,
            p.sync_retries,
            if k + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("  ]");
    out
}

fn json_traffic(points: &[TrafficPoint]) -> String {
    let mut out = String::from("  \"traffic\": [\n");
    for (k, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"pattern\": \"{}\", \"gap\": {}, \"nodes\": {}, \"count\": {}, \
             \"cycles\": {}, \"injected\": {}, \"delivered\": {}, \"returned\": {}, \
             \"credit_stalls\": {}, \"delivered_per_kcycle\": {:.2}, \"stats_match\": {}}}{}",
            p.pattern.name(),
            p.gap,
            p.nodes,
            p.count,
            p.cycles,
            p.injected,
            p.delivered,
            p.returned,
            p.credit_stalls,
            p.delivered_per_kcycle,
            p.stats_match,
            if k + 1 == points.len() { "" } else { "," }
        );
    }
    out.push_str("  ]");
    out
}

fn run_workload_suite(workers: usize) -> Vec<WorkloadPoint> {
    println!("\n== workload suite: four multicomputer kernels, serial vs parallel ==");
    println!(
        "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>10} {:>6}",
        "kernel", "nodes", "cycles", "messages", "prot", "syncrtr", "speedup", "match"
    );
    let mut points = Vec::new();
    for kind in WorkloadKind::ALL {
        let p = run_workload(kind, Some(workers));
        println!(
            "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9.2}x {:>6}",
            kind.name(),
            p.nodes,
            p.cycles,
            p.messages,
            p.protected_calls,
            p.sync_retries,
            p.speedup,
            p.stats_match
        );
        assert!(
            p.stats_match,
            "parallel engine diverged from serial on {}",
            kind.name()
        );
        points.push(p);
    }
    points
}

fn run_traffic_sweep(count: u64, workers: usize) -> Vec<TrafficPoint> {
    println!("\n== traffic generator: {count} messages/node, saturation + backoff ==");
    println!(
        "{:<10} {:>4} {:>9} {:>9} {:>10} {:>9} {:>8} {:>10} {:>6}",
        "pattern",
        "gap",
        "cycles",
        "injected",
        "delivered",
        "returned",
        "crstall",
        "del/kcyc",
        "match"
    );
    let mut points = Vec::new();
    for (pattern, gap) in TRAFFIC_SWEEP {
        let p = run_traffic(pattern, gap, count, Some(workers));
        println!(
            "{:<10} {:>4} {:>9} {:>9} {:>10} {:>9} {:>8} {:>10.2} {:>6}",
            pattern.name(),
            p.gap,
            p.cycles,
            p.injected,
            p.delivered,
            p.returned,
            p.credit_stalls,
            p.delivered_per_kcycle,
            p.stats_match
        );
        assert!(
            p.stats_match,
            "parallel engine diverged from serial on traffic {} gap {}",
            pattern.name(),
            gap
        );
        points.push(p);
    }
    points
}

fn run_coherence_meshes(
    meshes: &[(u8, u8, u8)],
    iters: u64,
    workers: usize,
) -> Vec<CoherencePoint> {
    println!("\n== coherence stress: interlocked block ping-pong, {iters} iterations/node ==");
    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9} {:>10} {:>6}",
        "mesh", "nodes", "cycles", "coh-pkts", "fetches", "invals", "misslat", "inv/kcyc", "match"
    );
    let mut points = Vec::new();
    for &dims in meshes {
        let p = run_coherence(dims, iters, Some(workers));
        println!(
            "{:<8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9.1} {:>10.2} {:>6}",
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            p.nodes,
            p.cycles,
            p.coh_packets,
            p.block_fetches,
            p.invalidations,
            p.miss_latency_avg,
            p.invalidations_per_kcycle,
            p.stats_match
        );
        assert!(
            p.stats_match,
            "parallel engine diverged from serial on coherence {dims:?}"
        );
        points.push(p);
    }
    points
}

/// The value following `--flag`, if the flag is present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|k| {
        args.get(k + 1)
            .cloned()
            .unwrap_or_else(|| panic!("{flag} takes a value"))
    })
}

/// Run the busy scenario serially with a streaming sampler, flush, and
/// return the epoch count written to `path`.
fn stream_busy_telemetry(dims: (u8, u8, u8), iters: u64, epoch_cycles: u64, path: &str) -> usize {
    let tel = TelemetryConfig {
        enabled: true,
        epoch_cycles,
        ring_epochs: 0,
        stream_path: Some(path.into()),
    };
    let mut m = build_busy_scenario_telemetry(dims, iters, Some(1), tel);
    m.run_until_halt(RUN_LIMIT)
        .expect("busy scenario completes with telemetry streaming");
    assert!(
        m.faulted_threads().is_empty(),
        "telemetry scenario faulted: {:?}",
        m.faulted_threads()
    );
    m.telemetry_flush();
    m.telemetry().map_or(0, |t| t.ring().len())
}

/// `scaling --gate`: CI's perf soft gate over the telemetry stream and
/// the committed baseline. Writes `BENCH_gate.json` and returns the
/// process exit code.
fn run_gate(workers: usize, epoch_cycles: u64, baseline_path: &str, stream_path: &str) -> i32 {
    let cores = host_cores();
    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = gate::parse_baseline(&baseline_text).expect("committed baseline parses");

    // Busy leg: serial busy 8×8×8 with the sampler streaming JSONL; the
    // fresh cycles/sec is summed off the stream itself, so the gate
    // exercises exactly what it gates on.
    let epochs = stream_busy_telemetry((8, 8, 8), 128, epoch_cycles, stream_path);
    let stream = std::fs::read_to_string(stream_path).expect("read back telemetry stream");
    let totals = gate::stream_totals(&stream).expect("telemetry stream sums");
    println!(
        "busy 8x8x8 telemetry stream: {} epochs, {} cycles, {:.0} cycles/sec",
        totals.epochs,
        totals.cycles,
        totals.cycles_per_sec()
    );

    // Weak-scaling leg: the sweep's endpoints, measured the same way
    // the committed baseline was.
    let small = run_mesh((2, 1, 1), ROUNDS, Some(workers));
    let large = run_mesh((8, 8, 8), ROUNDS, Some(workers));
    assert!(
        small.stats_match && large.stats_match,
        "parallel engine diverged on a gate mesh"
    );
    let fresh_ratio = small.cycles_per_sec / large.cycles_per_sec;

    let checks = [
        gate::busy_gate(totals.cycles_per_sec(), baseline.busy_cycles_per_sec),
        gate::weak_scaling_gate(fresh_ratio, baseline.weak_scaling_ratio()),
    ];
    for c in &checks {
        println!(
            "{:<22} measured {:>12.1}  baseline {:>12.1}  ratio {:.2}x  [{}]",
            c.name,
            c.measured,
            c.baseline,
            c.ratio,
            c.status.label()
        );
        if let Some(a) = c.annotation() {
            println!("{a}");
        }
    }
    let json = gate::summary_json(&checks, epochs, cores);
    std::fs::write("BENCH_gate.json", &json).expect("write BENCH_gate.json");
    println!(
        "wrote BENCH_gate.json (status: {})",
        gate::overall(&checks).label()
    );
    gate::exit_code(&checks)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_mode = args.iter().any(|a| a == "--gate");
    let coherence_smoke = args.iter().any(|a| a == "--coherence-smoke");
    let traffic_smoke = args.iter().any(|a| a == "--traffic-smoke");
    let fault_campaign = args.iter().any(|a| a == "--fault-campaign");
    let fault_seed: u64 = flag_value(&args, "--fault-seed")
        .map_or(7, |v| v.parse().expect("--fault-seed takes an integer"));
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let telemetry_out =
        flag_value(&args, "--telemetry-out").unwrap_or_else(|| "telemetry.jsonl".into());
    let epoch_cycles: u64 =
        flag_value(&args, "--epoch").map_or(0, |v| v.parse().expect("--epoch takes a cycle count"));
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_scaling.json".into());
    // The parallel legs always run with an *explicit* worker count:
    // auto-detection resolves to 1 on single-core hosts (and on hosts
    // that cap `available_parallelism`), which used to record
    // `parallel_workers: 1` on every row and make the serial-vs-
    // parallel columns meaningless. Default: the host's parallelism,
    // but at least 2 so the parallel engine is actually exercised
    // (clamped per-mesh to the node count as always).
    let workers: Option<usize> = args.iter().position(|a| a == "--workers").map(|k| {
        args.get(k + 1)
            .and_then(|v| v.parse().ok())
            .expect("--workers takes a positive integer")
    });
    let cores = host_cores();
    let workers = workers.unwrap_or_else(|| cores.max(2));
    let meshes = if smoke { SMOKE_MESHES } else { MESHES };
    let horizon = if smoke { 10_000 } else { 60_000 };
    let (busy_dims, busy_iters) = if smoke {
        ((2, 2, 1), 32)
    } else {
        ((8, 8, 8), 128)
    };

    if coherence_smoke {
        // CI's coherence smoke: the 2×2×1 mesh, serial vs parallel, with
        // the result words verified and the stats diffed inside
        // `run_coherence`. Written to its own file so the workflow can
        // assert on it without touching the committed sweep.
        let points = run_coherence_meshes(&[(2, 2, 1), (4, 2, 2)], 32, workers);
        let json = format!(
            "{{\n{},\n  \"host_cores\": {cores}\n}}\n",
            json_coherence(&points)
        );
        std::fs::write("BENCH_coherence_smoke.json", &json)
            .expect("write BENCH_coherence_smoke.json");
        println!("wrote BENCH_coherence_smoke.json");
        return;
    }

    if traffic_smoke {
        // CI's traffic smoke: the full pattern sweep at a reduced
        // message count. `run_traffic` itself asserts every SEND
        // injected and zero unknown event records; the row assertions
        // here pin nonzero injection into its own file for the
        // workflow to grep.
        let points = run_traffic_sweep(16, workers);
        assert!(
            points.iter().all(|p| p.injected > 0),
            "a traffic row injected nothing"
        );
        let json = format!(
            "{{\n{},\n  \"host_cores\": {cores}\n}}\n",
            json_traffic(&points)
        );
        std::fs::write("BENCH_traffic_smoke.json", &json).expect("write BENCH_traffic_smoke.json");
        println!("wrote BENCH_traffic_smoke.json");
        return;
    }

    if fault_campaign {
        // CI's fault smoke and the robustness headline: a seeded
        // campaign (link corruption/drops/delays, DRAM upsets, a stall
        // window) over the busy-traffic scenario, serial vs parallel,
        // plus the crash-recovery round trip (watchdog trip →
        // checkpoint restore → completed run, bit-identical to a run
        // that never crashed).
        println!("== fault campaign: seeded injection over busy traffic (seed {fault_seed}) ==");
        let p = run_fault_campaign((2, 2, 1), 24, workers, fault_seed);
        println!(
            "2x2x1: {} cycles, corrupted {}, dropped {}, delayed {}, dram flips {}, \
             scheduled events {}",
            p.cycles,
            p.report.packets_corrupted,
            p.report.packets_dropped,
            p.report.packets_delayed,
            p.report.dram_flips,
            p.report.events_applied
        );
        println!(
            "recovery: {} crc-nacks, {} retransmits, {} dup-drops, {} ecc-corrected, \
             {} ecc-double",
            p.crc_nacks, p.report.retransmits, p.dup_drops, p.ecc_corrected, p.ecc_double_errors
        );
        println!(
            "deterministic across engines: {}   completed despite faults: {}",
            p.stats_match, p.completed
        );
        assert!(p.stats_match, "fault campaign diverged across engines");
        assert!(p.completed, "fault campaign left faulted threads");
        assert!(
            p.report.packets_corrupted + p.report.packets_dropped > 0 && p.report.retransmits > 0,
            "campaign must fault packets and recover them"
        );

        println!("\n== crash recovery: watchdog trip -> checkpoint restore -> completion ==");
        let r = run_crash_recovery((2, 1, 1), 1_000, workers);
        println!(
            "checkpoint at cycle {} ({} bytes); watchdog tripped at {}; diagnostic {}",
            r.checkpoint_at,
            r.checkpoint_bytes,
            r.tripped_at,
            if r.diagnostic_captured {
                "captured"
            } else {
                "MISSING"
            }
        );
        println!(
            "restored run completed: {}   bit-identical to uninterrupted run: {}",
            r.recovered, r.stats_match
        );
        assert!(
            r.diagnostic_captured && r.recovered && r.stats_match,
            "crash-recovery round trip failed"
        );

        let json = format!(
            "{{\n  \"fault_campaign\": {{\"dims\": \"2x2x1\", \"seed\": {}, \"cycles\": {}, \
             \"packets_corrupted\": {}, \"packets_dropped\": {}, \"packets_delayed\": {}, \
             \"dram_flips\": {}, \"events_applied\": {}, \"crc_nacks\": {}, \"retransmits\": {}, \
             \"dup_drops\": {}, \"ecc_corrected\": {}, \"ecc_double_errors\": {}, \
             \"stats_match\": {}, \"completed\": {}}},\n  \
             \"crash_recovery\": {{\"dims\": \"2x1x1\", \"checkpoint_at\": {}, \
             \"checkpoint_bytes\": {}, \"tripped_at\": {}, \"diagnostic_captured\": {}, \
             \"recovered\": {}, \"stats_match\": {}}},\n  \"host_cores\": {cores}\n}}\n",
            p.seed,
            p.cycles,
            p.report.packets_corrupted,
            p.report.packets_dropped,
            p.report.packets_delayed,
            p.report.dram_flips,
            p.report.events_applied,
            p.crc_nacks,
            p.report.retransmits,
            p.dup_drops,
            p.ecc_corrected,
            p.ecc_double_errors,
            p.stats_match,
            p.completed,
            r.checkpoint_at,
            r.checkpoint_bytes,
            r.tripped_at,
            r.diagnostic_captured,
            r.recovered,
            r.stats_match
        );
        std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
        println!("wrote BENCH_faults.json");
        return;
    }

    if gate_mode {
        // CI's perf soft gate, rebuilt on the metrics stream: both the
        // busy-row and the weak-scaling checks live in `mm_bench::gate`
        // (tested pass/warn/fail logic) instead of two copy-pasted
        // workflow scripts. The busy epoch defaults to 256 cycles so
        // the ~1k-cycle run produces a multi-epoch stream.
        let gate_epoch = if epoch_cycles == 0 { 256 } else { epoch_cycles };
        let stream_path = if telemetry_out == "telemetry.jsonl" {
            "BENCH_busy_telemetry.jsonl".to_owned()
        } else {
            telemetry_out
        };
        std::process::exit(run_gate(workers, gate_epoch, &baseline_path, &stream_path));
    }

    println!(
        "M-Machine weak scaling — remote-store + synchronizing ping-pong, {ROUNDS} rounds/pair"
    );
    println!("parallel engine: {workers} workers ({cores} host cores)\n");
    println!(
        "{:<8} {:>6} {:>9} {:>10} {:>14} {:>4} {:>12} {:>8} {:>6}",
        "mesh",
        "nodes",
        "cycles",
        "wall(ms)",
        "cycles/sec",
        "wrk",
        "par-wall(ms)",
        "par-spd",
        "match"
    );
    let mut points = Vec::new();
    for &dims in meshes {
        let p = run_mesh(dims, ROUNDS, Some(workers));
        println!(
            "{:<8} {:>6} {:>9} {:>10.2} {:>14.0} {:>4} {:>12.2} {:>7.2}x {:>6}",
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            p.nodes,
            p.cycles,
            p.wall_ms,
            p.cycles_per_sec,
            p.parallel_workers,
            p.parallel_wall_ms,
            p.parallel_speedup,
            p.stats_match
        );
        assert!(
            p.stats_match,
            "parallel engine diverged from serial on {dims:?}"
        );
        points.push(p);
    }

    println!("\n== idle-heavy 2x1x1, fixed {horizon}-cycle horizon: dense loop vs engine ==");
    let idle = idle_heavy_comparison(horizon, ROUNDS);
    println!(
        "naive : {:>10.2} ms  {:>14.0} cycles/sec",
        idle.naive_wall_ms, idle.naive_cps
    );
    println!(
        "engine: {:>10.2} ms  {:>14.0} cycles/sec",
        idle.engine_wall_ms, idle.engine_cps
    );
    println!(
        "speedup: {:.1}x  (identical MachineStats: {})",
        idle.speedup, idle.stats_match
    );
    assert!(idle.stats_match, "engine diverged from the dense loop");

    println!(
        "\n== busy-traffic {}x{}x{} ({} iters/node): serial engine vs parallel engine ==",
        busy_dims.0, busy_dims.1, busy_dims.2, busy_iters
    );
    let busy = busy_traffic_comparison(busy_dims, busy_iters, Some(workers));
    println!(
        "serial  : {:>10.2} ms   ({} cycles)",
        busy.serial_wall_ms, busy.cycles
    );
    println!(
        "parallel: {:>10.2} ms   ({} workers)",
        busy.parallel_wall_ms, busy.workers
    );
    println!(
        "speedup: {:.2}x  (identical MachineStats: {})",
        busy.speedup, busy.stats_match
    );
    assert!(busy.stats_match, "parallel engine diverged on busy traffic");
    println!(
        "telemetry: {:>9.2} ms   ({:.0} cycles/sec, {:+.2}% overhead, {} epochs, stats match {})",
        busy.telemetry_wall_ms,
        busy.telemetry_cycles_per_sec,
        busy.telemetry_overhead_pct,
        busy.telemetry_epochs,
        busy.telemetry_stats_match
    );
    assert!(
        busy.telemetry_stats_match,
        "telemetry sampling changed the simulation"
    );

    if telemetry {
        // Stream one more serial busy run as JSONL for consumers (CI's
        // telemetry smoke validates every line against the committed
        // schema via `mmctl check`).
        let eff = if epoch_cycles == 0 {
            mm_telemetry::DEFAULT_EPOCH_CYCLES
        } else {
            epoch_cycles
        };
        let epochs = stream_busy_telemetry(busy_dims, busy_iters, epoch_cycles, &telemetry_out);
        println!("wrote {telemetry_out} ({epochs} epochs at {eff} cycles/epoch)");
    }

    let coherence_meshes = if smoke {
        &[(2u8, 2u8, 1u8)][..]
    } else {
        COHERENCE_MESHES
    };
    let coherence_iters = if smoke { 32 } else { COHERENCE_ITERS };
    let coherence = run_coherence_meshes(coherence_meshes, coherence_iters, workers);

    let workloads = run_workload_suite(workers);
    let traffic_count = if smoke { 16 } else { TRAFFIC_COUNT };
    let traffic = run_traffic_sweep(traffic_count, workers);

    let json = format!(
        "{{\n  \"scenario\": \"weak-scaling remote-store + synchronizing ping-pong\",\n  \
         \"rounds_per_pair\": {ROUNDS},\n  \"host_cores\": {cores},\n{},\n{},\n{},\n{},\n{},\n{}\n}}\n",
        json_points(&points),
        json_idle(&idle),
        json_busy(&busy),
        json_coherence(&coherence),
        json_workloads(&workloads),
        json_traffic(&traffic)
    );
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("\nwrote BENCH_scaling.json");
}
