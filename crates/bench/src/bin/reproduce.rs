//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mm-bench --release --bin reproduce            # everything
//! cargo run -p mm-bench --release --bin reproduce -- table1  # one artifact
//! ```
//!
//! `--telemetry` additionally streams a per-epoch metrics JSONL for a
//! small dedicated run to `reproduce_telemetry.jsonl`. It never touches
//! stdout: the printed artifacts stay byte-identical with or without
//! the flag (telemetry only *reads* counters).

use mm_bench::scaling::{build_busy_scenario_telemetry, RUN_LIMIT};
use mm_bench::{
    fig5, fig6, fig9, interleave, network_sweep, page_mode_ablation, table1, throttle_ablation,
};
use mm_telemetry::TelemetryConfig;

fn print_table1() {
    println!("== Table 1: local and remote access times (cycles) ==");
    println!(
        "{:<22} {:>10} {:>10} {:>11} {:>11}",
        "Access Type", "read(pap)", "read(sim)", "write(pap)", "write(sim)"
    );
    for row in table1() {
        println!(
            "{:<22} {:>10} {:>10} {:>11} {:>11}",
            row.access, row.read_paper, row.read_measured, row.write_paper, row.write_measured
        );
    }
    println!();
}

fn print_fig9() {
    for write in [false, true] {
        let title = if write { "REMOTE WRITE" } else { "REMOTE READ" };
        println!("== Fig. 9 timeline: {title} ==");
        println!(
            "{:<42} {:>5} {:>11} {:>11}",
            "phase", "node", "paper(cyc)", "sim(cyc)"
        );
        for p in fig9(write) {
            println!(
                "{:<42} {:>5} {:>11} {:>11}",
                p.label, p.node, p.paper, p.measured
            );
        }
        println!();
    }
}

fn print_fig5() {
    println!("== Fig. 5 / §3.1: stencil on multiple H-Threads ==");
    println!(
        "{:<10} {:>8} {:>11} {:>11} {:>8} {:>8}",
        "stencil", "threads", "depth(pap)", "depth(sim)", "cycles", "correct"
    );
    for r in fig5() {
        let name = if r.neighbours == 6 {
            "7-point"
        } else {
            "27-point"
        };
        let paper = r
            .depth_paper
            .map_or_else(|| "-".to_owned(), |d| d.to_string());
        println!(
            "{:<10} {:>8} {:>11} {:>11} {:>8} {:>8}",
            name, r.threads, paper, r.depth_measured, r.cycles, r.correct
        );
    }
    println!();
}

fn print_fig6() {
    let r = fig6(100);
    println!("== Fig. 6: CC-register loop synchronization ==");
    println!(
        "2 H-Threads : {} cycles / {} iterations = {:.1} cycles/iteration",
        r.pair_cycles,
        r.iterations,
        r.pair_cycles as f64 / r.iterations as f64
    );
    println!(
        "4 H-Threads : {} cycles / {} iterations = {:.1} cycles/iteration (barrier)",
        r.barrier4_cycles,
        r.iterations,
        r.barrier4_cycles as f64 / r.iterations as f64
    );
    println!();
}

fn print_interleave() {
    println!("== Fig. 4 semantics: V-Thread interleaving masks FP latency ==");
    println!("{:>9} {:>8} {:>12}", "V-Threads", "cycles", "FP ops/cycle");
    for r in interleave() {
        println!("{:>9} {:>8} {:>12.3}", r.vthreads, r.cycles, r.throughput);
    }
    println!();
}

fn print_network() {
    println!("== §4.2: message latency vs distance (3-word message) ==");
    println!("{:>5} {:>9}", "hops", "cycles");
    for r in network_sweep() {
        println!("{:>5} {:>9}", r.hops, r.latency);
    }
    println!("(paper: 5 cycles to a neighbour)\n");
}

fn print_model() {
    println!("== §1/§5 area & peak-performance model ==");
    println!("{:<46} {:>9} {:>9}", "claim", "paper", "derived");
    for r in mm_model::section1_claims() {
        println!("{:<46} {:>9.2} {:>9.2}", r.claim, r.paper, r.derived);
    }
    println!();
}

fn print_ablations() {
    let pm = page_mode_ablation();
    println!("== Ablation: SDRAM page mode (local cache-miss read) ==");
    println!("page mode on : {:>4} cycles", pm.read_on);
    println!("page mode off: {:>4} cycles", pm.read_off);
    println!();
    let th = throttle_ablation();
    println!("== Ablation: send-credit throttling (24-message burst) ==");
    println!("16 credits: {:>6} cycles", th.cycles_credits_16);
    println!(" 2 credits: {:>6} cycles", th.cycles_credits_2);
    println!();
}

/// Stream a small dedicated run's metrics to
/// `reproduce_telemetry.jsonl` (stderr chatter only — stdout carries
/// the paper artifacts and must stay byte-identical).
fn write_telemetry_stream() {
    const PATH: &str = "reproduce_telemetry.jsonl";
    let tel = TelemetryConfig {
        enabled: true,
        epoch_cycles: 512,
        ring_epochs: 0,
        stream_path: Some(PATH.into()),
    };
    let mut m = build_busy_scenario_telemetry((2, 2, 1), 256, Some(1), tel);
    m.run_until_halt(RUN_LIMIT)
        .expect("telemetry scenario completes");
    m.telemetry_flush();
    let epochs = m.telemetry().map_or(0, |t| t.ring().len());
    eprintln!("wrote {PATH} ({epochs} epochs)");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = args.iter().any(|a| a == "--telemetry");
    args.retain(|a| a != "--telemetry");
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a.trim_start_matches('-') == k);

    println!("M-Machine reproduction — regenerating the paper's evaluation\n");
    if want("table1") {
        print_table1();
    }
    if want("fig9") {
        print_fig9();
    }
    if want("fig5") {
        print_fig5();
    }
    if want("fig6") {
        print_fig6();
    }
    if want("interleave") {
        print_interleave();
    }
    if want("network") {
        print_network();
    }
    if want("model") {
        print_model();
    }
    if want("ablations") {
        print_ablations();
    }
    if telemetry {
        write_telemetry_stream();
    }
}
