//! A counting global allocator for allocation-regression measurement.
//!
//! The cycle kernel's contract (docs/ARCHITECTURE.md, "Hot path") is
//! that a steady-state busy cycle performs **zero heap allocations**.
//! Two consumers hold it to that:
//!
//! * the `zero_alloc` integration test at the workspace root installs
//!   [`CountingAlloc`] as its `#[global_allocator]` and asserts a zero
//!   allocation delta across thousands of busy cycles;
//! * the `scaling` binary installs it too and reports
//!   allocations-per-cycle for the busy-traffic row in
//!   `BENCH_scaling.json`, so the number is tracked over time.
//!
//! The counters are process-global statics updated by whichever binary
//! installed the allocator; in a binary that did not install it they
//! simply stay at zero (and [`enabled`] reports `false`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// Install in a binary or test with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mm_bench::alloc_probe::CountingAlloc =
///     mm_bench::alloc_probe::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter updates are lock-free
// atomics and perform no allocation themselves.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; `layout` is forwarded
    // unchanged and the counter bump cannot allocate or unwind.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract, which
        // is exactly `System::alloc`'s.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`; `ptr`/`layout` came
    // from `alloc`/`realloc` above, which defer to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` was allocated by this
        // allocator with `layout`, i.e. by `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc`; arguments are
    // forwarded unchanged and the counter bump cannot allocate.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: caller guarantees `ptr`/`layout` describe a live
        // `System` allocation and `new_size` is non-zero.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations counted so far (0 if the probe allocator is not
/// installed in this process).
#[must_use]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested so far.
#[must_use]
pub fn bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Is the probe live in this process? (Heuristic: a Rust process that
/// has reached `main` with the probe installed has allocated.)
#[must_use]
pub fn enabled() -> bool {
    allocations() > 0
}
