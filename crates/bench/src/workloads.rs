//! Workload-suite bench scenarios: the four classic multicomputer
//! kernels of [`mm_runtime::workloads`] on a 4-node mesh, each run
//! under the serial and the parallel engine with results verified
//! against an independent host-side reference and the two engines'
//! [`MachineStats`] diffed.
//!
//! These are the benchmark-facing builds of the same kernels the
//! differential tests pin (`crates/core/tests/workloads.rs`): bigger
//! inputs, `trace` off, wall-clock timed, one `BENCH_scaling.json` row
//! per kernel. The task-queue row additionally reports the §3.2
//! protected-call count and the §2 full/empty sync-retry count — the
//! two paper mechanisms that workload exists to exercise.

use mm_core::machine::{MMachine, MachineConfig, MachineStats};
use mm_isa::pointer::Perm;
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_mem::MemWord;
use mm_runtime::workloads::{
    matmul_block, matmul_reference_block, sample_sort_node, spmv_node, task_queue,
    task_queue_entries, task_queue_expected_sum, SortLayout, SpmvLayout, MATMUL_A_OFF,
    MATMUL_C_OFF, MATMUL_N, TASKQ_STRIPE_WORDS,
};
use std::time::Instant;

/// Mesh every workload scenario runs on (matmul's block grid fixes the
/// node count at four; the others simply match it).
pub const WORKLOAD_DIMS: (u8, u8, u8) = (2, 2, 1);
const NODES: usize = 4;

/// Cycle budget for one workload run.
pub const RUN_LIMIT: u64 = 2_000_000;

/// Keys per node in the bench sample-sort (larger than the test's, but
/// still below [`SortLayout::RECV_OFF`]).
const SORT_KEYS: usize = 8;
const SPLITTERS: [i64; 3] = [25, 50, 75];
const SORT_LAYOUT: SortLayout = SortLayout {
    p: NODES,
    k: SORT_KEYS,
};

const SPMV_LAYOUT: SpmvLayout = SpmvLayout { rows: 8, nnz: 4 };
const SPMV_SWEEPS: u64 = 8;

const TASKQ_TASKS: usize = 6;

/// The four kernels, in BENCH row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Parallel sample-sort (all-to-all key exchange + local sort).
    SampleSort,
    /// 4×4 blocked matmul with the B operand remote on node 0.
    Matmul,
    /// Fixed-degree CSR SpMV with guarded-pointer column indices.
    Spmv,
    /// Work-stealing task queue on full/empty bits + protected calls.
    TaskQueue,
}

impl WorkloadKind {
    /// All kernels, in row order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::SampleSort,
        WorkloadKind::Matmul,
        WorkloadKind::Spmv,
        WorkloadKind::TaskQueue,
    ];

    /// The BENCH row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::SampleSort => "sample_sort",
            WorkloadKind::Matmul => "matmul",
            WorkloadKind::Spmv => "spmv",
            WorkloadKind::TaskQueue => "task_queue",
        }
    }
}

/// One kernel's bench measurement.
#[derive(Debug, Clone)]
pub struct WorkloadPoint {
    /// Which kernel.
    pub kind: WorkloadKind,
    /// Mesh dimensions.
    pub dims: (u8, u8, u8),
    /// Node count.
    pub nodes: usize,
    /// Cycles to halt (identical across engines when `stats_match`).
    pub cycles: u64,
    /// Serial-engine wall-clock milliseconds.
    pub serial_wall_ms: f64,
    /// Serial-engine simulated cycles per wall-clock second.
    pub serial_cycles_per_sec: f64,
    /// Worker threads the parallel run resolved to.
    pub parallel_workers: usize,
    /// Parallel-engine wall-clock milliseconds.
    pub parallel_wall_ms: f64,
    /// Parallel-engine simulated cycles per wall-clock second.
    pub parallel_cycles_per_sec: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    pub speedup: f64,
    /// Did serial and parallel produce identical [`MachineStats`]?
    pub stats_match: bool,
    /// User messages that crossed the fabric.
    pub messages: u64,
    /// §3.2 protected calls taken — the task queue's entry/return
    /// discipline, plus one guarded dispatch entry per received message
    /// on the kernels that communicate by SEND.
    pub protected_calls: u64,
    /// §2 synchronizing-fault retries (task queue; 0 elsewhere).
    pub sync_retries: u64,
}

fn base_machine(workers: Option<usize>) -> MMachine {
    let mut cfg = MachineConfig::with_dims(WORKLOAD_DIMS.0, WORKLOAD_DIMS.1, WORKLOAD_DIMS.2);
    cfg.engine.workers = workers;
    cfg.trace = false;
    MMachine::build(cfg).expect("valid config")
}

fn poke(m: &mut MMachine, node: usize, va: u64, w: Word) {
    assert!(
        m.node_mut(node).mem.poke_va(va, MemWord::new(w)),
        "poke at unmapped va {va:#x} on node {node}"
    );
}

fn peek(m: &MMachine, node: usize, va: u64) -> Word {
    m.node(node).mem.peek_va(va).expect("mapped").word
}

fn sort_keys(node: usize) -> Vec<i64> {
    (0..SORT_KEYS)
        .map(|j| (7 + 31 * node as i64 + 13 * j as i64) % 97)
        .collect()
}

fn bucket_of(key: i64) -> usize {
    SPLITTERS.iter().position(|&s| key < s).unwrap_or(NODES - 1)
}

fn matmul_inputs() -> ([[f64; 4]; 4], [[f64; 4]; 4]) {
    let mut a = [[0.0f64; 4]; 4];
    let mut b = [[0.0f64; 4]; 4];
    for i in 0..MATMUL_N {
        for j in 0..MATMUL_N {
            a[i][j] = (i * MATMUL_N + j + 1) as f64;
            b[i][j] = ((i * 2 + j * 5) % 7 + 1) as f64;
        }
    }
    (a, b)
}

fn spmv_entry(g: usize, e: usize) -> (usize, f64) {
    let n = NODES * SPMV_LAYOUT.rows;
    ((g * SPMV_LAYOUT.nnz + e * 5) % n, ((g + e) % 5 + 1) as f64)
}

fn spmv_x(g: usize) -> f64 {
    (g + 1) as f64
}

fn taskq_payload_base(node: usize) -> i64 {
    100 + 10 * node as i64
}

/// Build one kernel's machine, inputs poked and registers pinned.
///
/// # Panics
///
/// Panics if a program fails to load or an input lands on an unmapped
/// address (layout bug).
#[must_use]
pub fn build_workload(kind: WorkloadKind, workers: Option<usize>) -> MMachine {
    let mut m = base_machine(workers);
    match kind {
        WorkloadKind::SampleSort => {
            for me in 0..NODES {
                let prog = sample_sort_node(&SORT_LAYOUT, me, &SPLITTERS);
                m.load_user_program(me, 0, &prog).unwrap();
                let keys_base = m.home_va(me, 0);
                for (j, key) in sort_keys(me).iter().enumerate() {
                    poke(
                        &mut m,
                        me,
                        keys_base + (SortLayout::KEYS_OFF + j) as u64,
                        Word::from_i64(*key),
                    );
                }
                for d in 0..NODES {
                    let region = m.home_va(d, 0) + SORT_LAYOUT.recv_off(me) as u64;
                    let cap = m.make_ptr(Perm::ReadWrite, 10, region).expect("region cap");
                    let slot = m.home_va(me, 1) + d as u64;
                    poke(&mut m, me, slot, cap);
                }
                m.set_user_reg(me, 0, 0, Reg::Int(1), m.home_ptr(me, 0));
                m.set_user_reg(me, 0, 0, Reg::Int(9), m.home_ptr(me, 1));
            }
        }
        WorkloadKind::Matmul => {
            let (a, b) = matmul_inputs();
            let b_base = m.home_va(0, 1);
            for (i, row) in b.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    poke(
                        &mut m,
                        0,
                        b_base + (i * MATMUL_N + j) as u64,
                        Word::from_f64(v),
                    );
                }
            }
            for me in 0..NODES {
                let (bi, bj) = (me / 2, me % 2);
                m.load_user_program(me, 0, &matmul_block(bi, bj)).unwrap();
                let a_base = m.home_va(me, 0);
                for r in 0..2 {
                    for (k, &v) in a[2 * bi + r].iter().enumerate() {
                        poke(
                            &mut m,
                            me,
                            a_base + (MATMUL_A_OFF + r * MATMUL_N + k) as u64,
                            Word::from_f64(v),
                        );
                    }
                }
                m.set_user_reg(me, 0, 0, Reg::Int(1), m.home_ptr(me, 0));
                m.set_user_reg(me, 0, 0, Reg::Int(2), m.home_ptr(0, 1));
            }
        }
        WorkloadKind::Spmv => {
            let prog = spmv_node(&SPMV_LAYOUT, SPMV_SWEEPS);
            for me in 0..NODES {
                m.load_user_program(me, 0, &prog).unwrap();
                let base = m.home_va(me, 0);
                for r in 0..SPMV_LAYOUT.rows {
                    let g = me * SPMV_LAYOUT.rows + r;
                    poke(
                        &mut m,
                        me,
                        base + (SPMV_LAYOUT.x_off() + r) as u64,
                        Word::from_f64(spmv_x(g)),
                    );
                    for e in 0..SPMV_LAYOUT.nnz {
                        let (col, val) = spmv_entry(g, e);
                        poke(
                            &mut m,
                            me,
                            base + (SpmvLayout::VALS_OFF + r * SPMV_LAYOUT.nnz + e) as u64,
                            Word::from_f64(val),
                        );
                        let owner = col / SPMV_LAYOUT.rows;
                        let xva = m.home_va(owner, 0)
                            + (SPMV_LAYOUT.x_off() + col % SPMV_LAYOUT.rows) as u64;
                        let cap = m.make_ptr(Perm::ReadWrite, 0, xva).expect("x cap");
                        poke(
                            &mut m,
                            me,
                            base + (SPMV_LAYOUT.cols_off() + r * SPMV_LAYOUT.nnz + e) as u64,
                            cap,
                        );
                    }
                }
                m.set_user_reg(me, 0, 0, Reg::Int(1), m.home_ptr(me, 0));
            }
        }
        WorkloadKind::TaskQueue => {
            let prog = task_queue(NODES, TASKQ_TASKS);
            let (body, ret) = task_queue_entries(&prog);
            let queue_va = m.home_va(0, 2);
            let queue_ptr = m.home_ptr(0, 2);
            for me in 0..NODES {
                if me != 0 {
                    m.map_coherent_page(me, queue_va);
                }
                m.load_user_program(me, 0, &prog).unwrap();
                m.set_user_reg(me, 0, 0, Reg::Int(1), queue_ptr);
                let own = (me * TASKQ_STRIPE_WORDS) as i64;
                let next = (((me + 1) % NODES) * TASKQ_STRIPE_WORDS) as i64;
                m.set_user_reg(me, 0, 0, Reg::Int(7), Word::from_i64(own));
                m.set_user_reg(me, 0, 0, Reg::Int(2), Word::from_i64(next));
                m.set_user_reg(
                    me,
                    0,
                    0,
                    Reg::Int(10),
                    Word::from_i64(taskq_payload_base(me)),
                );
                m.set_user_reg(me, 0, 0, Reg::Int(12), body);
                m.set_user_reg(me, 0, 0, Reg::Int(13), ret);
            }
        }
    }
    m
}

/// Verify one finished run against the host-side reference.
fn verify(kind: WorkloadKind, m: &MMachine) {
    match kind {
        WorkloadKind::SampleSort => {
            let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); NODES];
            for node in 0..NODES {
                for key in sort_keys(node) {
                    buckets[bucket_of(key)].push(key);
                }
            }
            for b in &mut buckets {
                b.sort_unstable();
            }
            for (d, bucket) in buckets.iter().enumerate() {
                let base = m.home_va(d, 0);
                let count = peek(m, d, base + SORT_LAYOUT.out_count_off() as u64).as_i64();
                assert_eq!(count as usize, bucket.len(), "bucket {d} size");
                for (i, want) in bucket.iter().enumerate() {
                    let got = peek(m, d, base + (SORT_LAYOUT.out_keys_off() + i) as u64).as_i64();
                    assert_eq!(got, *want, "bucket {d} position {i}");
                }
            }
        }
        WorkloadKind::Matmul => {
            let (a, b) = matmul_inputs();
            for me in 0..NODES {
                let (bi, bj) = (me / 2, me % 2);
                let want = matmul_reference_block(&a, &b, bi, bj);
                for (e, &w) in want.iter().enumerate() {
                    let got = peek(m, me, m.home_va(me, 0) + (MATMUL_C_OFF + e) as u64);
                    assert_eq!(
                        got.bits(),
                        Word::from_f64(w).bits(),
                        "C block ({bi},{bj}) element {e}"
                    );
                }
            }
        }
        WorkloadKind::Spmv => {
            for me in 0..NODES {
                for r in 0..SPMV_LAYOUT.rows {
                    let g = me * SPMV_LAYOUT.rows + r;
                    let mut y = 0.0f64;
                    for e in 0..SPMV_LAYOUT.nnz {
                        let (col, val) = spmv_entry(g, e);
                        y += spmv_x(col) * val;
                    }
                    let got = peek(m, me, m.home_va(me, 0) + (SPMV_LAYOUT.y_off() + r) as u64);
                    assert_eq!(got.bits(), Word::from_f64(y).bits(), "y[{g}]");
                }
            }
        }
        WorkloadKind::TaskQueue => {
            let total: i64 = (0..NODES)
                .map(|i| m.user_reg(i, 0, 0, 4).unwrap().as_i64())
                .sum();
            assert_eq!(
                total,
                task_queue_expected_sum(NODES, TASKQ_TASKS, taskq_payload_base),
                "claimed payload sum"
            );
            let protected: u64 = (0..NODES).map(|i| m.node(i).stats().protected_calls).sum();
            assert_eq!(
                protected,
                2 * (NODES * TASKQ_TASKS) as u64,
                "protected calls: entry + return per task"
            );
        }
    }
}

fn run_checked(kind: WorkloadKind, mut m: MMachine) -> (f64, MachineStats, u64, u64) {
    let t0 = Instant::now();
    m.run_until_halt(RUN_LIMIT).expect("workload completes");
    let wall = t0.elapsed().as_secs_f64();
    m.run_cycles(256); // drain in-flight protocol traffic
    assert!(
        m.faulted_threads().is_empty(),
        "{}: faulted threads {:?}",
        kind.name(),
        m.faulted_threads()
    );
    verify(kind, &m);
    let protected: u64 = (0..NODES).map(|i| m.node(i).stats().protected_calls).sum();
    let stats = m.stats();
    assert_eq!(stats.coherence.unknown_events, 0, "dropped event records");
    let sync_retries = stats.coherence.sync_retries;
    (wall, stats, protected, sync_retries)
}

/// Run one kernel under the serial and the parallel engine, verify both
/// results, and diff their stats.
///
/// # Panics
///
/// Panics if a run exceeds [`RUN_LIMIT`] cycles, a thread faults, or a
/// result diverges from the host-side reference.
#[must_use]
pub fn run_workload(kind: WorkloadKind, workers: Option<usize>) -> WorkloadPoint {
    let (serial_wall, serial_stats, protected, sync_retries) =
        run_checked(kind, build_workload(kind, Some(1)));
    let parallel = build_workload(kind, workers);
    let parallel_workers = parallel.workers();
    let nodes = parallel.node_count();
    let (parallel_wall, parallel_stats, _, _) = run_checked(kind, parallel);
    #[allow(clippy::cast_precision_loss)]
    WorkloadPoint {
        kind,
        dims: WORKLOAD_DIMS,
        nodes,
        cycles: serial_stats.cycles,
        serial_wall_ms: serial_wall * 1e3,
        serial_cycles_per_sec: serial_stats.cycles as f64 / serial_wall,
        parallel_workers,
        parallel_wall_ms: parallel_wall * 1e3,
        parallel_cycles_per_sec: parallel_stats.cycles as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        stats_match: serial_stats == parallel_stats,
        messages: serial_stats.messages,
        protected_calls: protected,
        sync_retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_point_is_engine_invariant_and_verified() {
        for kind in WorkloadKind::ALL {
            let p = run_workload(kind, Some(2));
            assert_eq!(p.nodes, NODES);
            assert!(p.stats_match, "{} engines disagreed", kind.name());
            assert!(p.cycles > 0);
            if kind == WorkloadKind::TaskQueue {
                assert!(p.protected_calls > 0, "no §3.2 protected call fired");
                assert!(p.sync_retries > 0, "no §2 full/empty contention");
            }
        }
    }
}
