//! # mm-bench — experiment harnesses for every table and figure
//!
//! Each public function reproduces one evaluation artifact of *The
//! M-Machine Multicomputer* on the full simulator and returns paper-vs-
//! measured data. The `reproduce` binary prints them; the Criterion
//! benches time them; the integration tests assert their shape.

#![warn(missing_docs)]

pub mod alloc_probe;
pub mod coherence;
pub mod faults;
pub mod gate;
pub mod scaling;
pub mod traffic;
pub mod workloads;

use mm_core::machine::{MMachine, MachineConfig};
use mm_core::timeline::{PacketKind, Phase};
use mm_isa::assemble;
use mm_isa::op::Priority;
use mm_isa::reg::Reg;
use mm_isa::word::Word;
use mm_mem::MemWord;
use mm_runtime::kernels::{stencil_kernel, tile_words};
use std::sync::Arc;

/// Cycles between thread start and the `UserHalted` trace event for a
/// `ld / add / halt` probe, beyond the load latency itself.
const READ_PROBE_OVERHEAD: u64 = 1;

fn machine() -> MMachine {
    MMachine::build(MachineConfig::small()).expect("valid config")
}

/// Run a probe program on node 0 (slot `slot`), returning
/// (start_cycle, halt_cycle).
fn run_probe(m: &mut MMachine, slot: usize, src: &str, ptr: Word) -> (u64, u64) {
    let prog = Arc::new(assemble(src).expect("probe assembles"));
    m.load_user_program(0, slot, &prog).expect("user slot");
    m.set_user_reg(0, 0, slot, Reg::Int(1), ptr);
    let t0 = m.cycle();
    m.clear_timeline();
    m.run_until_halt(200_000).expect("probe finishes");
    let halt = m
        .timeline()
        .first_cycle(|p| matches!(p, Phase::UserHalted { node: 0, slot: s, .. } if *s == slot))
        .expect("halt recorded");
    (t0, halt)
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Access type label (paper row name).
    pub access: &'static str,
    /// Paper read cycles.
    pub read_paper: u64,
    /// Paper write cycles.
    pub write_paper: u64,
    /// Measured read cycles.
    pub read_measured: u64,
    /// Measured write cycles.
    pub write_measured: u64,
}

const READ_PROBE: &str = "ld [r1], r2\n add r2, #0, r3\n halt\n";
const WRITE_PROBE: &str = "st r2, [r1]\n halt\n";

/// Measure a read latency on node 0 given a warmed machine.
fn measure_read(m: &mut MMachine, slot: usize, ptr: Word) -> u64 {
    let (t0, halt) = run_probe(m, slot, READ_PROBE, ptr);
    halt - t0 - READ_PROBE_OVERHEAD
}

/// Measure a write's completion (last memory response at `home`).
fn measure_write(m: &mut MMachine, slot: usize, ptr: Word, home: usize) -> u64 {
    let prog = Arc::new(assemble(WRITE_PROBE).expect("probe assembles"));
    m.load_user_program(0, slot, &prog).expect("user slot");
    m.set_user_reg(0, 0, slot, Reg::Int(1), ptr);
    m.set_user_reg(0, 0, slot, Reg::Int(2), Word::from_u64(0xBEEF));
    let t0 = m.cycle();
    m.run_until_halt(200_000).expect("probe finishes");
    m.run_cycles(600); // let the store land remotely
    m.node(home).stats().last_response_cycle - t0
}

/// Warm node `node`'s LTLB (and optionally its cache line for the
/// pointer's address) by running a toucher thread on that node.
fn warm(m: &mut MMachine, node: usize, slot: usize, ptr: Word, same_line: bool) {
    let src = if same_line {
        "ld [r1], r2\n add r2, #0, r3\n halt\n"
    } else {
        // Touch a different line of the same page: warms LTLB + DRAM row.
        "ld [r1+#64], r2\n add r2, #0, r3\n halt\n"
    };
    let prog = Arc::new(assemble(src).expect("toucher assembles"));
    m.load_user_program(node, slot, &prog).expect("user slot");
    m.set_user_reg(node, 0, slot, Reg::Int(1), ptr);
    m.run_until_halt(200_000).expect("toucher finishes");
    m.run_cycles(64);
}

/// Reproduce **Table 1**: local and remote access times.
///
/// Measurement procedure mirrors the paper: "a read is completed when the
/// requested data has been written into the destination register. A write
/// is completed when the line containing the data has been fully loaded
/// into the cache"; remote rows run on a 2-node mesh with the remote node
/// otherwise idle.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();

    // --- Local cache hit (3 / 2): fully warmed. ---
    let (mut mr, mut mw) = (machine(), machine());
    let ptr = mr.home_ptr(0, 0);
    warm(&mut mr, 0, 0, ptr, true);
    let read = measure_read(&mut mr, 1, ptr);
    let ptrw = mw.home_ptr(0, 0);
    warm(&mut mw, 0, 0, ptrw, true);
    let write = measure_write(&mut mw, 1, ptrw, 0);
    rows.push(Table1Row {
        access: "Local Cache Hit",
        read_paper: 3,
        write_paper: 2,
        read_measured: read,
        write_measured: write,
    });

    // --- Local cache miss (13 / 19): LTLB + DRAM row warm, line cold. ---
    let (mut mr, mut mw) = (machine(), machine());
    let ptr = mr.home_ptr(0, 0);
    warm(&mut mr, 0, 0, ptr, false);
    let read = measure_read(&mut mr, 1, ptr);
    let ptrw = mw.home_ptr(0, 0);
    warm(&mut mw, 0, 0, ptrw, false);
    let write = measure_write(&mut mw, 1, ptrw, 0);
    rows.push(Table1Row {
        access: "Local Cache Miss",
        read_paper: 13,
        write_paper: 19,
        read_measured: read,
        write_measured: write,
    });

    // --- Local LTLB miss (61 / 67): cold machine, handler walks LPT. ---
    let mut mr = machine();
    let ptr = mr.home_ptr(0, 0);
    let read = measure_read(&mut mr, 0, ptr);
    let mut mw = machine();
    let wptr = mw.home_ptr(0, 0);
    let write = measure_write(&mut mw, 0, wptr, 0);
    rows.push(Table1Row {
        access: "Local LTLB Miss",
        read_paper: 61,
        write_paper: 67,
        read_measured: read,
        write_measured: write,
    });

    // --- Remote cache hit (138 / 74): remote node warm. ---
    let mut mr = machine();
    let rptr = mr.home_ptr(1, 0);
    warm(&mut mr, 1, 0, rptr, true);
    let read = measure_read(&mut mr, 0, rptr);
    let mut mw = machine();
    let rptrw = mw.home_ptr(1, 0);
    warm(&mut mw, 1, 0, rptrw, true);
    let write = measure_write(&mut mw, 0, rptrw, 1);
    rows.push(Table1Row {
        access: "Remote Cache Hit",
        read_paper: 138,
        write_paper: 74,
        read_measured: read,
        write_measured: write,
    });

    // --- Remote cache miss (154 / 90): remote LTLB warm, line cold. ---
    let mut mr = machine();
    let rptr = mr.home_ptr(1, 0);
    warm(&mut mr, 1, 0, rptr, false);
    let read = measure_read(&mut mr, 0, rptr);
    let mut mw = machine();
    let rptrw = mw.home_ptr(1, 0);
    warm(&mut mw, 1, 0, rptrw, false);
    let write = measure_write(&mut mw, 0, rptrw, 1);
    rows.push(Table1Row {
        access: "Remote Cache Miss",
        read_paper: 154,
        write_paper: 90,
        read_measured: read,
        write_measured: write,
    });

    // --- Remote LTLB miss (202 / 138): both nodes cold. ---
    let mut mr = machine();
    let rptr = mr.home_ptr(1, 0);
    let read = measure_read(&mut mr, 0, rptr);
    let mut mw = machine();
    let wptr = mw.home_ptr(1, 0);
    let write = measure_write(&mut mw, 0, wptr, 1);
    rows.push(Table1Row {
        access: "Remote LTLB Miss",
        read_paper: 202,
        write_paper: 138,
        read_measured: read,
        write_measured: write,
    });

    rows
}

/// One phase of a Fig. 9 timeline.
#[derive(Debug, Clone)]
pub struct Fig9Phase {
    /// Phase label (matching the figure's annotations).
    pub label: &'static str,
    /// Which node the phase occurs on.
    pub node: usize,
    /// Paper's cumulative cycle (remote read timeline).
    pub paper: u64,
    /// Measured cumulative cycle.
    pub measured: u64,
}

/// Reproduce **Fig. 9**: the remote read (or write) timeline.
#[must_use]
pub fn fig9(write: bool) -> Vec<Fig9Phase> {
    let mut m = machine();
    let rptr = m.home_ptr(1, 0);
    // Warm the remote node so its handler's load hits (Fig. 9 assumes
    // handler data structures hit; the remote LTLB path is the 202 row).
    warm(&mut m, 1, 0, rptr, true);

    let src = if write { WRITE_PROBE } else { READ_PROBE };
    let prog = Arc::new(assemble(src).expect("probe"));
    m.load_user_program(0, 0, &prog).expect("slot");
    m.set_user_reg(0, 0, 0, Reg::Int(1), rptr);
    m.set_user_reg(0, 0, 0, Reg::Int(2), Word::from_u64(1));
    let t0 = m.cycle();
    m.clear_timeline();
    m.run_until_halt(200_000).expect("finishes");
    m.run_cycles(600);

    let tl = m.timeline();
    let rel = |c: Option<u64>| c.map_or(0, |c| c.saturating_sub(t0));
    let mut phases = vec![
        Fig9Phase {
            label: if write { "STORE issues" } else { "LOAD issues" },
            node: 0,
            paper: 0,
            measured: 0,
        },
        Fig9Phase {
            label: "LTLB miss event enqueued",
            node: 0,
            paper: 4,
            measured: rel(
                tl.first_cycle(|p| matches!(p, Phase::EventEnqueued { node: 0, class: 1 }))
            ),
        },
        Fig9Phase {
            label: "handler sends message",
            node: 0,
            paper: 52,
            measured: rel(tl.first_cycle(|p| {
                matches!(
                    p,
                    Phase::PacketInjected {
                        node: 0,
                        priority: Priority::P0,
                        kind: PacketKind::Message
                    }
                )
            })),
        },
        Fig9Phase {
            label: "message received",
            node: 1,
            paper: 57,
            measured: rel(tl.first_cycle(|p| {
                matches!(
                    p,
                    Phase::PacketDelivered {
                        node: 1,
                        kind: PacketKind::Message,
                        ..
                    }
                )
            })),
        },
    ];
    if write {
        phases.push(Fig9Phase {
            label: "remote store completes",
            node: 1,
            paper: 74,
            measured: m.node(1).stats().last_response_cycle - t0,
        });
    } else {
        phases.push(Fig9Phase {
            label: "reply message sent",
            node: 1,
            paper: 86,
            measured: rel(tl.first_cycle(|p| {
                matches!(
                    p,
                    Phase::PacketInjected {
                        node: 1,
                        priority: Priority::P1,
                        kind: PacketKind::Message
                    }
                )
            })),
        });
        phases.push(Fig9Phase {
            label: "reply received",
            node: 0,
            paper: 91,
            measured: rel(tl.first_cycle(|p| {
                matches!(
                    p,
                    Phase::PacketDelivered {
                        node: 0,
                        priority: Priority::P1,
                        kind: PacketKind::Message
                    }
                )
            })),
        });
        phases.push(Fig9Phase {
            label: "data written to destination register",
            node: 0,
            paper: 138,
            measured: rel(tl.first_cycle(|p| matches!(p, Phase::UserHalted { node: 0, .. })))
                .saturating_sub(READ_PROBE_OVERHEAD),
        });
    }
    phases
}

/// One configuration of the Fig. 5 stencil experiment.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Stencil neighbours (6 = 7-point, 26 = 27-point).
    pub neighbours: usize,
    /// H-Threads used.
    pub threads: usize,
    /// Paper's static depth (where reported).
    pub depth_paper: Option<usize>,
    /// Our static depth.
    pub depth_measured: usize,
    /// Executed cycles on the simulator (cache warm).
    pub cycles: u64,
    /// Whether the numeric result matched the reference formula.
    pub correct: bool,
}

/// Reproduce **Fig. 5** (+ the §3.1 27-point claim): static depth and
/// executed cycles of the smoothing kernel on 1/2/4 H-Threads.
#[must_use]
pub fn fig5() -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for (neighbours, thread_counts) in [(6usize, vec![1usize, 2, 4]), (26, vec![1, 2, 4])] {
        for &threads in &thread_counts {
            let kernel = stencil_kernel(neighbours, threads);
            let mut m = machine();
            let base = m.home_va(0, 0);
            let ptr = m.home_ptr(0, 0);

            // Tile values: neighbour i = i+1, r_c = 2, u_c = 10.
            let a = 0.5f64;
            let b = 0.25f64;
            let mut sum = 0.0;
            for i in 0..neighbours {
                let v = (i + 1) as f64;
                sum += v;
                m.node_mut(0)
                    .mem
                    .poke_va(base + i as u64, MemWord::new(Word::from_f64(v)));
            }
            m.node_mut(0)
                .mem
                .poke_va(base + neighbours as u64, MemWord::new(Word::from_f64(2.0)));
            m.node_mut(0).mem.poke_va(
                base + neighbours as u64 + 1,
                MemWord::new(Word::from_f64(10.0)),
            );
            let expect = 10.0 + a * 2.0 + b * sum;

            // Warm every line of the tile.
            let mut warm_src = String::new();
            for off in (0..tile_words(neighbours)).step_by(8) {
                warm_src.push_str(&format!("ld [r1+#{off}], r2\n"));
            }
            warm_src.push_str("add r2, #0, r3\n halt\n");
            let warm_prog = Arc::new(assemble(&warm_src).expect("warm"));
            m.load_user_program(0, 3, &warm_prog).expect("slot");
            m.set_user_reg(0, 0, 3, Reg::Int(1), ptr);
            m.run_until_halt(100_000).expect("warm finishes");
            m.run_cycles(64);

            // Launch the kernel as one V-Thread.
            m.load_vthread(0, 0, &kernel.programs).expect("vthread");
            for c in 0..threads {
                m.set_user_reg(0, c, 0, Reg::Int(1), ptr);
                m.set_user_reg(0, c, 0, Reg::Fp(14), Word::from_f64(a));
                m.set_user_reg(0, c, 0, Reg::Fp(15), Word::from_f64(b));
            }
            let t0 = m.cycle();
            m.run_until_halt(100_000).expect("kernel finishes");
            let cycles = (m.cycle() - t0).saturating_sub(64); // halt drain
            m.run_cycles(64);
            let got = m
                .node(0)
                .mem
                .peek_va(base + tile_words(neighbours) as u64 - 1)
                .expect("output mapped")
                .word
                .as_f64();

            let depth_paper = match (neighbours, threads) {
                (6, 1) => Some(12),
                (6, 2) => Some(8),
                (26, 1) => Some(36),
                (26, 4) => Some(17),
                _ => None,
            };
            rows.push(Fig5Row {
                neighbours,
                threads,
                depth_paper,
                depth_measured: kernel.static_depth,
                cycles,
                correct: (got - expect).abs() < 1e-9,
            });
        }
    }
    rows
}

/// Result of the Fig. 6 synchronization experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Loop iterations run.
    pub iterations: u64,
    /// Total cycles for the 2-H-Thread interlocked loop.
    pub pair_cycles: u64,
    /// Total cycles for the 4-H-Thread barrier loop.
    pub barrier4_cycles: u64,
}

/// Reproduce **Fig. 6**: CC-register loop synchronization cost.
#[must_use]
pub fn fig6(iterations: u64) -> Fig6Result {
    let mut m = machine();
    let pair = mm_runtime::barrier::fig6_loop_pair(iterations);
    m.load_vthread(0, 0, &pair).expect("vthread");
    let t0 = m.cycle();
    m.run_until_halt(1_000_000).expect("pair finishes");
    let pair_cycles = (m.cycle() - t0).saturating_sub(64);

    let mut m4 = machine();
    let quad = mm_runtime::barrier::barrier4_programs(iterations);
    m4.load_vthread(0, 0, &quad).expect("vthread");
    let t0 = m4.cycle();
    m4.run_until_halt(1_000_000).expect("barrier finishes");
    let barrier4_cycles = (m4.cycle() - t0).saturating_sub(64);

    Fig6Result {
        iterations,
        pair_cycles,
        barrier4_cycles,
    }
}

/// One point of the V-Thread interleaving experiment (Fig. 4 semantics).
#[derive(Debug, Clone)]
pub struct InterleaveRow {
    /// Resident V-Threads.
    pub vthreads: usize,
    /// Cycles to finish all of them.
    pub cycles: u64,
    /// FP operations per cycle achieved.
    pub throughput: f64,
}

/// Measure how interleaving V-Threads masks FP latency: each thread runs
/// a dependent chain of 48 `fadd`s; with more resident threads the
/// 3-cycle FP bubbles fill with other threads' work at zero switch cost.
#[must_use]
pub fn interleave() -> Vec<InterleaveRow> {
    let mut src = String::new();
    for _ in 0..48 {
        src.push_str("fadd f1, f2, f1\n");
    }
    src.push_str("halt\n");
    let prog = Arc::new(assemble(&src).expect("chain assembles"));

    let mut rows = Vec::new();
    for vthreads in 1..=4usize {
        let mut m = machine();
        for slot in 0..vthreads {
            m.load_user_program(0, slot, &prog).expect("slot");
        }
        let t0 = m.cycle();
        m.run_until_halt(1_000_000).expect("finishes");
        let cycles = (m.cycle() - t0).saturating_sub(64);
        rows.push(InterleaveRow {
            vthreads,
            cycles,
            throughput: (vthreads as f64 * 48.0) / cycles as f64,
        });
    }
    rows
}

/// One point of the network latency sweep.
#[derive(Debug, Clone)]
pub struct NetworkRow {
    /// Hops to the destination.
    pub hops: u64,
    /// Delivery latency for a 3-word message.
    pub latency: u64,
}

/// Message latency vs. distance on an 8×1×1 mesh (pure fabric timing:
/// `2·hops + flits`, ≈5 cycles to a neighbour as in §4.2).
#[must_use]
pub fn network_sweep() -> Vec<NetworkRow> {
    use mm_net::fabric::{Fabric, FabricConfig};
    use mm_net::message::{Message, NodeCoord, Packet};
    let mut rows = Vec::new();
    for hops in 1..=7u64 {
        let mut f = Fabric::new(FabricConfig {
            dims: (8, 1, 1),
            hop_latency: 2,
            loopback_latency: 2,
        });
        let t = f.inject(
            0,
            Packet::User(Message {
                priority: Priority::P0,
                src: NodeCoord::new(0, 0, 0),
                dest: NodeCoord::new(hops as u8, 0, 0),
                dip: Word::ZERO,
                addr: Word::ZERO,
                body: [Word::ZERO].into(),
                wire: Default::default(),
            }),
        );
        rows.push(NetworkRow { hops, latency: t });
    }
    rows
}

/// The SDRAM page-mode ablation: local cache-miss latencies with page
/// mode on vs. off.
#[derive(Debug, Clone)]
pub struct PageModeAblation {
    /// Miss read latency with page mode (Table 1's 13).
    pub read_on: u64,
    /// Miss read latency with page mode disabled.
    pub read_off: u64,
}

/// Reproduce the design choice behind §2's "exploits the pipeline and
/// page mode of the external memory".
#[must_use]
pub fn page_mode_ablation() -> PageModeAblation {
    let mut m = machine();
    let ptr = m.home_ptr(0, 0);
    warm(&mut m, 0, 0, ptr, false);
    let read_on = measure_read(&mut m, 1, ptr);

    let mut cfg = MachineConfig::small();
    cfg.node.mem.sdram.page_mode = false;
    let mut m = MMachine::build(cfg).expect("valid");
    let ptr = m.home_ptr(0, 0);
    warm(&mut m, 0, 0, ptr, false);
    let read_off = measure_read(&mut m, 1, ptr);

    PageModeAblation { read_on, read_off }
}

/// Throttling ablation: time to deliver a 24-message burst with plentiful
/// vs. scarce send credits.
#[derive(Debug, Clone)]
pub struct ThrottleAblation {
    /// Cycles with 16 credits.
    pub cycles_credits_16: u64,
    /// Cycles with 2 credits.
    pub cycles_credits_2: u64,
}

/// Reproduce the §4.1 return-to-sender throttling behaviour under a
/// message flood.
#[must_use]
pub fn throttle_ablation() -> ThrottleAblation {
    let run = |credits: u32| -> u64 {
        let mut cfg = MachineConfig::small();
        cfg.node.iface.send_credits = credits;
        let mut m = MMachine::build(cfg).expect("valid");
        let mut src = String::new();
        for i in 0..24 {
            src.push_str(&format!("mov #{}, mc1\n send r10, r11, #1\n", i));
        }
        src.push_str("halt\n");
        let prog = Arc::new(assemble(&src).expect("flood assembles"));
        m.load_user_program(0, 0, &prog).expect("slot");
        let target = m.home_va(1, 3);
        let ptr = m.make_ptr(mm_isa::Perm::ReadWrite, 0, target).expect("ptr");
        m.set_user_reg(0, 0, 0, Reg::Int(10), ptr);
        let dip = m.image().write_dip;
        m.set_user_reg(0, 0, 0, Reg::Int(11), dip);
        let t0 = m.cycle();
        m.run_until_halt(1_000_000).expect("finishes");
        let _ = m.run_until(1_000_000, |m| m.node(1).net.stats().received == 24);
        m.cycle() - t0
    };
    ThrottleAblation {
        cycles_credits_16: run(16),
        cycles_credits_2: run(2),
    }
}
