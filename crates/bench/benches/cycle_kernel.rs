//! Criterion micro-benchmarks for the per-node-cycle hot path.
//!
//! Three altitudes, so a regression can be localized:
//!
//! * `node_step_busy` — one node, compute-loop thread plus resident
//!   handlers, stepped in isolation (everything cache-hot): the pure
//!   algorithmic cost of `Node::step_with`.
//! * `node_step_blocked` — one node whose only runnable threads are
//!   the queue-blocked event/message handlers: the cost of keeping the
//!   runtime resident, which the issue stage's memoized block proofs
//!   are supposed to make near-zero.
//! * `machine_busy_cycle` — a 4×4×4 mesh of busy nodes through the
//!   full serial engine: the end-to-end per-cycle cost including the
//!   scheduler walk, outbox drains and fabric pump.
//! * `pooled_walk_busy` — the same end-to-end engine at 64 and 512
//!   nodes, reported *per node-step* (`Throughput::Elements`): the
//!   cost of one node-cycle through the shard's SoA pool walk. Flat
//!   ns/element across the two sizes is the SoA layout's contract —
//!   if the 512-node number drifts above the 64-node one, per-step
//!   cost has stopped being size-independent and the weak-scaling
//!   cliff is creeping back.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mm_bench::scaling::build_busy_scenario;
use mm_net::message::NodeCoord;
use mm_sim::{Node, NodeConfig, StepScratch};
use std::sync::Arc;

/// An endless dependent-chain compute loop (never halts).
fn busy_program() -> Arc<mm_isa::instr::Program> {
    Arc::new(
        mm_isa::assemble(
            "loop:\n add r5, #1, r5\n add r6, r5, r6\n add r7, r6, r7\n\
             \n eq r5, #0, gcc1\n brf gcc1, loop\n halt\n",
        )
        .expect("busy program assembles"),
    )
}

fn node_step_busy(c: &mut Criterion) {
    let mut node = Node::new(NodeConfig::default(), NodeCoord::new(0, 0, 0));
    node.load_program(0, 0, busy_program(), 0);
    let mut scratch = StepScratch::new();
    let mut now = 0u64;
    let mut g = c.benchmark_group("cycle_kernel");
    g.sample_size(200_000);
    g.bench_function("node_step_busy", |b| {
        b.iter(|| {
            node.step_with(now, &mut scratch);
            now += 1;
            now
        });
    });
    g.finish();
}

fn node_step_blocked(c: &mut Criterion) {
    // Handlers blocked on empty queues are the whole workload: measures
    // the memoized skip path.
    let mut node = Node::new(NodeConfig::default(), NodeCoord::new(0, 0, 0));
    let spin = Arc::new(mm_isa::assemble("loop:\n mov evq, r4\n br loop\n").expect("assembles"));
    for cluster in 0..4 {
        node.load_program(cluster, mm_sim::EVENT_SLOT, Arc::clone(&spin), 0);
    }
    let mut scratch = StepScratch::new();
    let mut now = 0u64;
    let mut g = c.benchmark_group("cycle_kernel");
    g.sample_size(200_000);
    g.bench_function("node_step_blocked", |b| {
        b.iter(|| {
            node.step_with(now, &mut scratch);
            now += 1;
            now
        });
    });
    g.finish();
}

fn machine_busy_cycle(c: &mut Criterion) {
    // 64 busy nodes with enough iterations that the machine never
    // halts inside the measurement.
    let mut m = build_busy_scenario((4, 4, 4), u64::MAX / 2, Some(1));
    m.run_cycles(512); // past the boot transient
    let mut g = c.benchmark_group("cycle_kernel");
    g.sample_size(500);
    g.bench_function("machine_busy_cycle_64_nodes", |b| {
        b.iter(|| {
            m.run_cycles(16);
            m.cycle()
        });
    });
    g.finish();
}

fn pooled_walk_busy(c: &mut Criterion) {
    // Busy meshes where every node steps every cycle, so node-steps per
    // engine cycle equals the node count and `Throughput::Elements`
    // turns wall time into ns per pooled node-step — directly
    // comparable across mesh sizes.
    const CYCLES_PER_ITER: u64 = 16;
    let mut g = c.benchmark_group("pooled_walk");
    for (dims, nodes, samples) in [((4u8, 4u8, 4u8), 64u64, 200), ((8, 8, 8), 512, 60)] {
        let mut m = build_busy_scenario(dims, u64::MAX / 2, Some(1));
        m.run_cycles(512); // past the boot transient
        g.sample_size(samples);
        g.throughput(Throughput::Elements(nodes * CYCLES_PER_ITER));
        g.bench_function(&format!("pooled_walk_busy_{nodes}_nodes"), |b| {
            b.iter(|| {
                m.run_cycles(CYCLES_PER_ITER);
                m.cycle()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    node_step_busy,
    node_step_blocked,
    machine_busy_cycle,
    pooled_walk_busy
);
criterion_main!(benches);
