//! Criterion benches regenerating every table and figure of the paper's
//! evaluation. Each bench both *times* the experiment and asserts its
//! headline shape, so `cargo bench` doubles as a reproduction check.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_access_times");
    g.sample_size(10);
    g.bench_function("all_rows", |b| {
        b.iter(|| {
            let rows = mm_bench::table1();
            assert_eq!(rows[0].read_measured, 3, "local hit read");
            assert_eq!(rows[0].write_measured, 2, "local hit write");
            rows
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_timeline");
    g.sample_size(10);
    g.bench_function("remote_read", |b| b.iter(|| mm_bench::fig9(false)));
    g.bench_function("remote_write", |b| b.iter(|| mm_bench::fig9(true)));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_stencil");
    g.sample_size(10);
    g.bench_function("all_variants", |b| {
        b.iter(|| {
            let rows = mm_bench::fig5();
            assert!(rows.iter().all(|r| r.correct), "stencil results wrong");
            rows
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_barrier");
    g.sample_size(10);
    g.bench_function("loops_100", |b| b.iter(|| mm_bench::fig6(100)));
    g.finish();
}

fn bench_interleave(c: &mut Criterion) {
    let mut g = c.benchmark_group("vthread_interleave");
    g.sample_size(10);
    g.bench_function("1_to_4_threads", |b| b.iter(mm_bench::interleave));
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network_hop_sweep", |b| b.iter(mm_bench::network_sweep));
}

fn bench_model(c: &mut Criterion) {
    c.bench_function("section1_model", |b| b.iter(mm_model::section1_claims));
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("sdram_page_mode", |b| b.iter(mm_bench::page_mode_ablation));
    g.bench_function("send_throttling", |b| b.iter(mm_bench::throttle_ablation));
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig9,
    bench_fig5,
    bench_fig6,
    bench_interleave,
    bench_network,
    bench_model,
    bench_ablations
);
criterion_main!(benches);
