//! Offline, API-compatible subset of the
//! [criterion](https://crates.io/crates/criterion) benchmarking crate,
//! vendored so the workspace builds with no network access.
//!
//! Implements the surface `crates/bench/benches/paper_artifacts.rs`
//! uses: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! timed with [`std::time::Instant`] over a fixed number of samples and
//! the mean per-iteration wall time is printed — no statistics,
//! plotting, or baseline comparison.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much work one benchmark iteration performs, so the report can
/// print a per-element time next to the per-iteration one.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Drives one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `body` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Top-level benchmark driver (a stub of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<u64>,
}

const DEFAULT_SAMPLES: u64 = 10;

fn run_one(name: &str, samples: u64, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    let mean = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX)
    };
    let per_elem = throughput.map_or(String::new(), |t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "byte"),
        };
        #[allow(clippy::cast_precision_loss)]
        let each = mean.as_secs_f64() / (n.max(1) as f64);
        format!("  {:.1} ns/{unit}", each * 1e9)
    });
    println!(
        "bench {name:<40} {mean:>12.2?}/iter ({} iters){per_elem}",
        b.iterations
    );
}

impl Criterion {
    /// Time a single benchmark function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size.unwrap_or(DEFAULT_SAMPLES), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declare the work one iteration performs; subsequent benchmarks
    /// in the group also report time per element/byte.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group (no-op in this stub).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
