//! Value-generation strategies: the [`Strategy`] trait and the stock
//! implementations the workspace's tests rely on.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Generate one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Build a union from its alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite values with raw bit patterns (infinities, NaNs).
        if rng.next_u64() & 3 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let scale = f64::from(rng.next_u64() as i32 % 100).exp2();
            (mantissa - 0.5) * 2.0 * scale
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + rng.below(span as u128) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                (*self.start() as i128 + rng.below(span as u128) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Uniform choice among equally-weighted alternative strategies.
///
/// Supports only the unweighted form used in this workspace.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
