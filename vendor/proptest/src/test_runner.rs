//! The `proptest!` macro, its configuration, and the in-test assertion
//! macros.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assumption (`prop_assume!`) was not met; the case is skipped.
    Reject(String),
    /// An assertion (`prop_assert*!`) failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Define property tests. Mirrors proptest's macro for the forms
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
///
/// Each test runs `cases` deterministic cases (seeded by case index);
/// there is no shrinking, so failures report the raw generated values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::rng::TestRng::new(
                    0x4d5f_4d41_4348_494e ^ u64::from(case),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}
