//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a size specifier for [`vec`]: an exact length or
/// a (half-open or inclusive) range of lengths.
pub trait SizeRange {
    /// Draw a length from this specifier.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u128) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty vec size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u128) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length drawn
/// from `R`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Generate vectors whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
