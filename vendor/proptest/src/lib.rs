//! Offline, API-compatible subset of the [proptest](https://crates.io/crates/proptest)
//! property-testing crate, vendored so the workspace builds with no
//! network access.
//!
//! Covers exactly what this workspace's tests use: the [`Strategy`]
//! trait with `prop_map`, integer/float range strategies, `any::<T>()`,
//! [`Just`], tuple strategies, `prop::collection::vec`, and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` / `prop_oneof!`
//! macros. Generation is a deterministic splitmix64 stream (seeded per
//! test by case index), and there is **no shrinking** — a failing case
//! reports the values that failed, unminimized.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub mod rng {
    //! Deterministic random stream used by all strategies.

    /// A splitmix64 generator; deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            raw % bound
        }
    }
}
