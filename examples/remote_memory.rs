//! Transparent remote memory (§4.2): a plain `ld` whose address lives on
//! another node is completed by the LTLB-miss handler, a remote-read
//! message, and a reply that writes the destination register directly.
//!
//! ```text
//! cargo run --release --example remote_memory
//! ```

use m_machine::isa::assemble;
use m_machine::isa::reg::Reg;
use m_machine::isa::word::Word;
use m_machine::machine::{MMachine, MachineConfig};
use m_machine::mem::MemWord;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = MMachine::build(MachineConfig::small())?;

    // Node 1 owns this address; put a value there.
    let va = m.home_va(1, 0);
    m.node_mut(1)
        .mem
        .poke_va(va, MemWord::new(Word::from_u64(0xCAFE)));

    // Node 0 runs an ordinary load — no message-passing code in sight.
    let prog = Arc::new(assemble("ld [r1], r2\n add r2, #0, r3\n halt\n")?);
    m.load_user_program(0, 0, &prog)?;
    m.set_user_reg(0, 0, 0, Reg::Int(1), m.home_ptr(1, 0));

    let t0 = m.cycle();
    m.clear_timeline();
    m.run_until_halt(100_000)?;
    println!("remote load returned {:#x}", m.user_reg(0, 0, 0, 3)?.bits());
    assert_eq!(m.user_reg(0, 0, 0, 3)?.bits(), 0xCAFE);

    println!("\nobserved phases (cycles relative to the load):");
    print!("{}", m.timeline().render(t0));

    // And the reverse direction: a remote store (Fig. 7's handler).
    let st = Arc::new(assemble("st r2, [r1+#1]\n halt\n")?);
    m.load_user_program(0, 1, &st)?;
    m.set_user_reg(0, 0, 1, Reg::Int(1), m.home_ptr(1, 0));
    m.set_user_reg(0, 0, 1, Reg::Int(2), Word::from_u64(0xBEEF));
    m.run_until_halt(100_000)?;
    m.run_cycles(300);
    let got = m.node(1).mem.peek_va(va + 1).expect("mapped").word.bits();
    println!("\nremote store landed {got:#x} on node 1");
    assert_eq!(got, 0xBEEF);
    Ok(())
}
