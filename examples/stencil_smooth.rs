//! The paper's Fig. 5 workload: the 7-point-stencil smoothing operator
//! scheduled on 1, 2 and 4 H-Threads of one V-Thread.
//!
//! ```text
//! cargo run --release --example stencil_smooth
//! ```

use m_machine::isa::reg::Reg;
use m_machine::isa::word::Word;
use m_machine::machine::{MMachine, MachineConfig};
use m_machine::mem::MemWord;
use m_machine::runtime::kernels::{stencil_kernel, tile_words};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (a, b) = (0.5f64, 0.25f64);

    println!("7-point stencil  u* = u + a*rc + b*(sum of 6 neighbours)");
    println!(
        "{:>8} {:>12} {:>8} {:>10}",
        "threads", "static depth", "cycles", "result"
    );
    for threads in [1usize, 2, 4] {
        let kernel = stencil_kernel(6, threads);
        let mut m = MMachine::build(MachineConfig::small())?;
        let base = m.home_va(0, 0);
        let ptr = m.home_ptr(0, 0);

        // neighbours 1..=6, r_c = 2, u_c = 10.
        for i in 0..6u64 {
            m.node_mut(0)
                .mem
                .poke_va(base + i, MemWord::new(Word::from_f64((i + 1) as f64)));
        }
        m.node_mut(0)
            .mem
            .poke_va(base + 6, MemWord::new(Word::from_f64(2.0)));
        m.node_mut(0)
            .mem
            .poke_va(base + 7, MemWord::new(Word::from_f64(10.0)));

        m.load_vthread(0, 0, &kernel.programs)?;
        for c in 0..threads {
            m.set_user_reg(0, c, 0, Reg::Int(1), ptr);
            m.set_user_reg(0, c, 0, Reg::Fp(14), Word::from_f64(a));
            m.set_user_reg(0, c, 0, Reg::Fp(15), Word::from_f64(b));
        }
        let t0 = m.cycle();
        m.run_until_halt(100_000)?;
        let cycles = m.cycle() - t0 - 64;
        m.run_cycles(16);
        let out = m
            .node(0)
            .mem
            .peek_va(base + tile_words(6) as u64 - 1)
            .expect("output word")
            .word
            .as_f64();
        println!(
            "{threads:>8} {:>12} {cycles:>8} {out:>10.3}",
            kernel.static_depth
        );
    }
    println!("(paper: static depth 12 on 1 H-Thread, 8 on 2)");
    Ok(())
}
