//! Incremental parallelization (§1, §5): the same smoothing workload run
//! on one node, then spread over four nodes — each node smoothing its own
//! tiles with a 4-H-Thread V-Thread, data placed by the GTLB's cyclic
//! page interleaving.
//!
//! ```text
//! cargo run --release --example parallel_smooth
//! ```

use m_machine::isa::reg::Reg;
use m_machine::isa::word::Word;
use m_machine::machine::{MMachine, MachineConfig};
use m_machine::mem::MemWord;
use m_machine::runtime::kernels::{stencil_kernel, tile_words};

const TILES_PER_NODE: u64 = 6;

fn run(nodes: usize) -> Result<u64, Box<dyn std::error::Error>> {
    let dims = if nodes == 1 { (1, 1, 1) } else { (2, 2, 1) };
    let mut m = MMachine::build(MachineConfig::with_dims(dims.0, dims.1, dims.2))?;
    let kernel = stencil_kernel(6, 4);
    let tile = tile_words(6) as u64;
    let work_nodes = m.node_count();

    // Every node gets TILES_PER_NODE tiles in its own pages, and a
    // 4-H-Thread kernel per tile (one tile per user slot per pass).
    for n in 0..work_nodes {
        let base = m.home_va(n, 0);
        for t in 0..TILES_PER_NODE {
            for i in 0..6u64 {
                m.node_mut(n).mem.poke_va(
                    base + t * tile + i,
                    MemWord::new(Word::from_f64((i + t + 1) as f64)),
                );
            }
            m.node_mut(n)
                .mem
                .poke_va(base + t * tile + 6, MemWord::new(Word::from_f64(2.0)));
            m.node_mut(n)
                .mem
                .poke_va(base + t * tile + 7, MemWord::new(Word::from_f64(10.0)));
        }
    }

    let t0 = m.cycle();
    // Process tiles in waves of 4 (one V-Thread slot per tile).
    let mut done = 0;
    while done < TILES_PER_NODE {
        let wave = (TILES_PER_NODE - done).min(4);
        for n in 0..work_nodes {
            for w in 0..wave {
                let slot = w as usize;
                let t = done + w;
                m.load_vthread(n, slot, &kernel.programs)?;
                for c in 0..4 {
                    let ptr = m.make_ptr(
                        m_machine::isa::Perm::ReadWrite,
                        10,
                        m.home_va(n, 0) + t * tile,
                    )?;
                    m.set_user_reg(n, c, slot, Reg::Int(1), ptr);
                    m.set_user_reg(n, c, slot, Reg::Fp(14), Word::from_f64(0.5));
                    m.set_user_reg(n, c, slot, Reg::Fp(15), Word::from_f64(0.25));
                }
            }
        }
        m.run_until_halt(1_000_000)?;
        done += wave;
    }
    let cycles = m.cycle() - t0;

    // Verify one output per node.
    for n in 0..work_nodes {
        let out = m
            .node(n)
            .mem
            .peek_va(m.home_va(n, 0) + tile - 1)
            .expect("output")
            .word
            .as_f64();
        assert!(out.is_finite() && out != 0.0, "node {n} produced {out}");
    }
    Ok(cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t1 = run(1)?;
    let t4 = run(4)?;
    println!("1 node : {t1} cycles for {TILES_PER_NODE} tiles");
    println!(
        "4 nodes: {t4} cycles for {} tiles total",
        4 * TILES_PER_NODE
    );
    println!(
        "throughput scaling: {:.2}x with 4x the nodes",
        (4.0 * t1 as f64) / t4 as f64
    );
    Ok(())
}
