//! Quickstart: boot a two-node M-Machine, run a tiny program, inspect
//! registers and statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use m_machine::isa::assemble;
use m_machine::machine::{MMachine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2×1×1 mesh: two MAP nodes, each with four 3-issue clusters,
    // booted with the runtime handlers resident in the event V-Thread.
    let mut m = MMachine::build(MachineConfig::small())?;

    // Three-wide instructions: integer, memory and FP ops issue together.
    let program = std::sync::Arc::new(assemble(
        "start:\n\
         \tadd r0, #6, r1\n\
         \tmul r1, #7, r2 | fadd f1, f2, f3\n\
         \teq r2, #42, gcc1\n\
         \tbrt gcc1, done\n\
         \tadd r0, #0, r2\n\
         done:\n\
         \thalt\n",
    )?);
    m.load_user_program(0, 0, &program)?;

    let finished_at = m.run_until_halt(10_000)?;
    println!("halted at cycle {finished_at}");
    println!("r2 = {}", m.user_reg(0, 0, 0, 2)?.bits());
    assert_eq!(m.user_reg(0, 0, 0, 2)?.bits(), 42);

    let stats = m.stats();
    println!(
        "machine: {} instructions on {} nodes in {} cycles",
        stats.instructions,
        m.node_count(),
        stats.cycles
    );
    Ok(())
}
