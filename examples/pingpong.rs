//! User-level protected message passing (§4.1): two nodes bounce a value
//! back and forth with SEND instructions and synchronizing loads.
//!
//! Each side spins on `ld.fe` (load-when-full, leave-empty) on its own
//! flag word; the other side fills it with a synchronizing remote-write
//! message. Failed preconditions become memory-synchronizing faults that
//! the runtime retries — the paper's producer/consumer idiom.
//!
//! ```text
//! cargo run --release --example pingpong
//! ```

use m_machine::isa::assemble;
use m_machine::isa::reg::Reg;
use m_machine::machine::{MMachine, MachineConfig};
use std::sync::Arc;

const ROUNDS: u64 = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = MMachine::build(MachineConfig::small())?;

    // r1 = my flag (local), r10 = partner's flag capability,
    // r11 = synchronizing remote-write DIP, r12 = round count.
    let ping = Arc::new(assemble(&format!(
        "loop:\n\
         \tadd r5, #1, r5\n\
         \tmov r5, mc1\n\
         \tsend r10, r11, #1\n\
         \tld.fe [r1], r6\n\
         \teq r5, #{ROUNDS}, gcc1\n\
         \tbrf gcc1, loop\n\
         \thalt\n"
    ))?);
    let pong = Arc::new(assemble(&format!(
        "loop:\n\
         \tld.fe [r1], r6\n\
         \tmov r6, mc1\n\
         \tsend r10, r11, #1\n\
         \teq r6, #{ROUNDS}, gcc1\n\
         \tbrf gcc1, loop\n\
         \thalt\n"
    ))?);

    let flag0 = m.home_va(0, 2);
    let flag1 = m.home_va(1, 2);
    let sync_dip = m.image().write_sync_dip;

    m.load_user_program(0, 0, &ping)?;
    m.set_user_reg(
        0,
        0,
        0,
        Reg::Int(1),
        m.make_ptr(m_machine::isa::Perm::ReadWrite, 0, flag0)?,
    );
    m.set_user_reg(
        0,
        0,
        0,
        Reg::Int(10),
        m.make_ptr(m_machine::isa::Perm::ReadWrite, 0, flag1)?,
    );
    m.set_user_reg(0, 0, 0, Reg::Int(11), sync_dip);

    m.load_user_program(1, 0, &pong)?;
    m.set_user_reg(
        1,
        0,
        0,
        Reg::Int(1),
        m.make_ptr(m_machine::isa::Perm::ReadWrite, 0, flag1)?,
    );
    m.set_user_reg(
        1,
        0,
        0,
        Reg::Int(10),
        m.make_ptr(m_machine::isa::Perm::ReadWrite, 0, flag0)?,
    );
    m.set_user_reg(1, 0, 0, Reg::Int(11), sync_dip);

    let t0 = m.cycle();
    m.run_until_halt(2_000_000)?;
    let cycles = m.cycle() - t0 - 64;
    println!(
        "{ROUNDS} ping-pong rounds in {cycles} cycles ({:.1} cycles/round-trip)",
        cycles as f64 / ROUNDS as f64
    );
    assert_eq!(m.user_reg(0, 0, 0, 5)?.bits(), ROUNDS);
    assert!(m.faulted_threads().is_empty());
    Ok(())
}
