//! # m-machine
//!
//! A Rust reproduction of *The M-Machine Multicomputer* (Fillo, Keckler,
//! Dally, Carter, Chang, Gurevich, Lee — MIT AI Memo 1532 / MICRO 1995).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! * [`isa`] — words, guarded pointers, the MAP instruction set and assembler
//! * [`mem`] — SDRAM + SECDED, the 4-bank cache, LTLB/LPT and block status
//! * [`net`] — the 3-D mesh, GTLB/GDT and throttling
//! * [`sim`] — the cycle-level MAP node simulator
//! * [`runtime`] — boot image, event/message handlers, kernels
//! * [`machine`] — the multi-node `MMachine` public API
//! * [`model`] — the analytical area/performance model of the paper's §1
//!
//! ## Quickstart
//!
//! ```
//! use m_machine::machine::{MMachine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = MMachine::build(MachineConfig::small())?;
//! let node = m.node_ids()[0];
//! let prog = std::sync::Arc::new(m_machine::isa::assemble(
//!     "start: add r0, #7, r1\n halt\n",
//! )?);
//! m.load_user_program(node, 0, &prog)?;
//! m.run_until_halt(10_000)?;
//! assert_eq!(m.user_reg(node, 0, 0, 1)?.bits(), 7);
//! # Ok(())
//! # }
//! ```

pub use mm_core as machine;
pub use mm_isa as isa;
pub use mm_mem as mem;
pub use mm_model as model;
pub use mm_net as net;
pub use mm_runtime as runtime;
pub use mm_sim as sim;
